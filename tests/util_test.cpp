// Tests for vodsim/util: RNG, CSV, tables, CLI, env helpers, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>

#include "vodsim/util/cli.h"
#include "vodsim/util/csv.h"
#include "vodsim/util/env.h"
#include "vodsim/util/rng.h"
#include "vodsim/util/stable_vector.h"
#include "vodsim/util/table.h"
#include "vodsim/util/thread_pool.h"
#include "vodsim/util/units.h"

namespace vodsim {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(minutes(10), 600.0);
  EXPECT_DOUBLE_EQ(hours(2), 7200.0);
  EXPECT_DOUBLE_EQ(gigabytes(1), 8000.0);
  EXPECT_DOUBLE_EQ(to_gigabytes(gigabytes(150)), 150.0);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntRangeAndCoverage) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntUnbiasedRoughly) {
  Rng rng(17);
  constexpr std::uint64_t kBuckets = 5;
  constexpr int kN = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_int(kBuckets)];
  for (auto count : counts) {
    EXPECT_NEAR(static_cast<double>(count), kN / 5.0, kN * 0.01);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const double rate = 0.25;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / kN, 1.0 / rate, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(3.0), 0.0);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 2.0, 7.0};
  int counts[3] = {};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.015);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<std::size_t>(i)] = i;
  const auto original = items;
  rng.shuffle(items);
  EXPECT_NE(items, original);  // probability of identity is ~1/50!
}

TEST(Rng, ForkSeedIndependentStreams) {
  Rng parent(41);
  Rng child1(parent.fork_seed());
  Rng child2(parent.fork_seed());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitmixAdvances) {
  std::uint64_t state = 0;
  const auto a = splitmix64_next(state);
  const auto b = splitmix64_next(state);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- csv

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Csv, RoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<std::string> row = {"plain", "with,comma", "with\"quote", ""};
  writer.write_row(row);
  std::string line = out.str();
  line.pop_back();  // strip trailing newline
  std::vector<std::string> parsed;
  ASSERT_TRUE(parse_csv_line(line, parsed));
  EXPECT_EQ(parsed, row);
}

TEST(Csv, NumericFieldRoundTrip) {
  const double value = 0.12345678901234567;
  EXPECT_DOUBLE_EQ(std::stod(CsvWriter::field(value)), value);
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  std::vector<std::string> fields;
  EXPECT_FALSE(parse_csv_line("\"oops", fields));
}

TEST(Csv, ParseToleratesCrLf) {
  std::vector<std::string> fields;
  ASSERT_TRUE(parse_csv_line("a,b\r", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, ParseRejectsTextAfterClosingQuote) {
  // `"ab"c` is not valid RFC 4180 — a lenient parse would silently merge
  // the stray text and corrupt the field.
  std::vector<std::string> fields;
  EXPECT_FALSE(parse_csv_line("\"ab\"c", fields));
  EXPECT_FALSE(parse_csv_line("\"ab\"\"cd\"x,next", fields));
  EXPECT_FALSE(parse_csv_line("a,\"b\"c,d", fields));
}

TEST(Csv, ParseRejectsQuoteOpeningMidField) {
  std::vector<std::string> fields;
  EXPECT_FALSE(parse_csv_line("ab\"c\"", fields));
}

TEST(Csv, ParseAllowsQuotedFieldThenComma) {
  std::vector<std::string> fields;
  ASSERT_TRUE(parse_csv_line("\"a,b\",c", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "c"}));
  ASSERT_TRUE(parse_csv_line("\"quoted\"\r", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"quoted"}));
}

TEST(Csv, RecordRoundTripsEmbeddedNewlines) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<std::string> row1 = {"multi\nline", "with,comma",
                                         "quote\"and\nnewline"};
  const std::vector<std::string> row2 = {"plain", "second"};
  writer.write_row(row1);
  writer.write_row(row2);

  std::istringstream in(out.str());
  std::vector<std::string> parsed;
  ASSERT_TRUE(read_csv_record(in, parsed));
  EXPECT_EQ(parsed, row1);
  ASSERT_TRUE(read_csv_record(in, parsed));
  EXPECT_EQ(parsed, row2);
  EXPECT_FALSE(read_csv_record(in, parsed));  // end of input
}

TEST(Csv, RecordRejectsEofInsideQuotes) {
  std::istringstream in("\"never closed\nstill going");
  std::vector<std::string> fields;
  EXPECT_FALSE(read_csv_record(in, fields));
}

TEST(Csv, NonFiniteDoublesNormalized) {
  // pandas and spreadsheets parse these spellings; platform printf output
  // for non-finite values varies, so field() pins them.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(CsvWriter::field(inf), "inf");
  EXPECT_EQ(CsvWriter::field(-inf), "-inf");
  EXPECT_EQ(CsvWriter::field(std::nan("")), "nan");
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "23"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name   | value |"), std::string::npos);
  EXPECT_NE(text.find("| longer |    23 |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(0.12345, 3), "0.123");
  EXPECT_EQ(TablePrinter::pct(0.5, 1), "50.0%");
}

// ---------------------------------------------------------------- cli

TEST(Cli, DefaultsAndOverrides) {
  CliParser cli("prog", "test");
  cli.add_flag("alpha", "1.5", "a value");
  cli.add_bool_flag("verbose", "flag");
  const char* argv[] = {"prog", "--alpha", "2.5", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 2.5);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, EqualsSyntax) {
  CliParser cli("prog", "test");
  cli.add_flag("n", "0", "count");
  const char* argv[] = {"prog", "--n=42"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_long("n"), 42);
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_FALSE(cli.error().empty());
}

TEST(Cli, MissingValueFails) {
  CliParser cli("prog", "test");
  cli.add_flag("x", "0", "value");
  const char* argv[] = {"prog", "--x"};
  EXPECT_FALSE(cli.parse(2, argv));
}

// ---------------------------------------------------------------- env

TEST(Env, FallbacksAndParsing) {
  unsetenv("VODSIM_TEST_ENV");
  EXPECT_EQ(env_long("VODSIM_TEST_ENV", 5), 5);
  setenv("VODSIM_TEST_ENV", "12", 1);
  EXPECT_EQ(env_long("VODSIM_TEST_ENV", 5), 12);
  setenv("VODSIM_TEST_ENV", "3.5", 1);
  EXPECT_DOUBLE_EQ(env_double("VODSIM_TEST_ENV", 1.0), 3.5);
  setenv("VODSIM_TEST_ENV", "garbage", 1);
  EXPECT_EQ(env_long("VODSIM_TEST_ENV", 5), 5);
  unsetenv("VODSIM_TEST_ENV");
}

TEST(Env, BenchScaleOverrides) {
  unsetenv("REPRO_FULL");
  setenv("REPRO_TRIALS", "9", 1);
  setenv("REPRO_HOURS", "123", 1);
  const BenchScale scale = bench_scale();
  EXPECT_EQ(scale.trials, 9);
  EXPECT_DOUBLE_EQ(scale.sim_hours, 123.0);
  unsetenv("REPRO_TRIALS");
  unsetenv("REPRO_HOURS");
}

TEST(Env, ReproFullScale) {
  setenv("REPRO_FULL", "1", 1);
  const BenchScale scale = bench_scale();
  EXPECT_EQ(scale.trials, 5);
  EXPECT_DOUBLE_EQ(scale.sim_hours, 1000.0);
  unsetenv("REPRO_FULL");
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, IndicesCoverRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SubmitFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] {});
  future.get();  // completes without throwing
}

TEST(StableVector, AddressesSurviveGrowth) {
  // The engine captures Request& in pending event callbacks, so elements
  // must never relocate — across as many chunk boundaries as we care to
  // cross.
  StableVector<int, 4> values;
  std::vector<const int*> addresses;
  for (int i = 0; i < 100; ++i) {
    addresses.push_back(&values.emplace_back(i));
  }
  ASSERT_EQ(values.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(&values[static_cast<std::size_t>(i)], addresses[static_cast<std::size_t>(i)]);
    EXPECT_EQ(values[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(&values.back(), addresses.back());
}

TEST(StableVector, RangeForVisitsInOrder) {
  StableVector<int, 3> values;
  EXPECT_TRUE(values.empty());
  for (int i = 0; i < 10; ++i) values.emplace_back(i * i);
  int expected = 0;
  for (const int& value : values) {
    EXPECT_EQ(value, expected * expected);
    ++expected;
  }
  EXPECT_EQ(expected, 10);
}

TEST(StableVector, DestroysElementsOnClear) {
  static int live = 0;
  struct Probe {
    Probe() { ++live; }
    ~Probe() { --live; }
  };
  StableVector<Probe, 2> probes;
  for (int i = 0; i < 7; ++i) probes.emplace_back();
  EXPECT_EQ(live, 7);
  probes.clear();
  EXPECT_EQ(live, 0);
  EXPECT_TRUE(probes.empty());
}

}  // namespace
}  // namespace vodsim
