// Tests for engine support modules: configuration presets/validation,
// metrics windowing, the Figure 6 policy matrix, failure timelines.

#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "vodsim/engine/config.h"
#include "vodsim/fault/schedule.h"
#include "vodsim/engine/metrics.h"
#include "vodsim/engine/policy_matrix.h"

namespace vodsim {
namespace {

// --------------------------------------------------------------- config

TEST(Config, SmallSystemPreset) {
  const SystemConfig system = SystemConfig::small_system();
  EXPECT_EQ(system.num_servers, 5);
  EXPECT_DOUBLE_EQ(system.server_bandwidth, 100.0);
  EXPECT_DOUBLE_EQ(system.server_storage, gigabytes(100));
  EXPECT_DOUBLE_EQ(system.video_min_duration, minutes(10));
  EXPECT_DOUBLE_EQ(system.video_max_duration, minutes(30));
  EXPECT_DOUBLE_EQ(system.avg_copies, 2.2);
  EXPECT_NEAR(system.svbr(), 33.33, 0.01);
  EXPECT_DOUBLE_EQ(system.total_bandwidth(), 500.0);
}

TEST(Config, LargeSystemPreset) {
  const SystemConfig system = SystemConfig::large_system();
  EXPECT_EQ(system.num_servers, 20);
  EXPECT_DOUBLE_EQ(system.server_bandwidth, 300.0);
  EXPECT_DOUBLE_EQ(system.svbr(), 100.0);
  EXPECT_DOUBLE_EQ(system.total_bandwidth(), 6000.0);
  EXPECT_DOUBLE_EQ(system.mean_video_duration(), hours(1.5));
}

TEST(Config, StoragePhysicallyFitsPresetCatalogs) {
  // The replica budget must fit on disk for both presets — this pins the
  // catalog-size assumption documented in DESIGN.md.
  for (const SystemConfig& system :
       {SystemConfig::small_system(), SystemConfig::large_system()}) {
    const double copies = static_cast<double>(system.num_videos) * system.avg_copies;
    const double bits_needed = copies * system.mean_video_size();
    const double bits_available =
        static_cast<double>(system.num_servers) * system.server_storage;
    EXPECT_LT(bits_needed, bits_available) << system.name;
  }
}

TEST(Config, ArrivalRateSaturatesCapacity) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  // rate * mean video size == aggregate bandwidth.
  EXPECT_NEAR(config.arrival_rate() * config.system.mean_video_size(),
              config.system.total_bandwidth(), 1e-9);
  config.load_factor = 0.5;
  EXPECT_NEAR(config.arrival_rate() * config.system.mean_video_size(),
              config.system.total_bandwidth() * 0.5, 1e-9);
}

TEST(Config, StagingCapacityFromFraction) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.client.staging_fraction = 0.2;
  EXPECT_DOUBLE_EQ(config.staging_capacity(),
                   0.2 * config.system.mean_video_size());
}

TEST(Config, ValidationCatchesNonsense) {
  SimulationConfig good;
  good.system = SystemConfig::small_system();
  EXPECT_NO_THROW(good.validate());

  auto expect_invalid = [](auto mutate) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  expect_invalid([](SimulationConfig& c) { c.system.num_servers = 0; });
  expect_invalid([](SimulationConfig& c) { c.system.server_bandwidth = -1.0; });
  expect_invalid([](SimulationConfig& c) { c.system.view_bandwidth = 200.0; });
  expect_invalid([](SimulationConfig& c) { c.system.avg_copies = 0.5; });
  expect_invalid([](SimulationConfig& c) { c.client.staging_fraction = -0.1; });
  expect_invalid([](SimulationConfig& c) { c.client.receive_bandwidth = 1.0; });
  expect_invalid([](SimulationConfig& c) { c.load_factor = 0.0; });
  expect_invalid([](SimulationConfig& c) { c.warmup = c.duration; });
  expect_invalid([](SimulationConfig& c) {
    c.system.bandwidth_profile = {1.0, 2.0};  // wrong size for 5 servers
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.mean_time_between_failures = 0.0;
  });
}

TEST(Config, EveryRejectableFieldRejectsWithAUsefulMessage) {
  // One row per fail() branch in SimulationConfig::validate(): the mutation
  // that trips it and a substring the thrown message must carry, so a user
  // staring at the error can tell *which* field is wrong.
  struct Row {
    const char* what;
    std::function<void(SimulationConfig&)> mutate;
    const char* expect;
  };
  const std::vector<Row> rows = {
      {"num_servers", [](SimulationConfig& c) { c.system.num_servers = 0; },
       "num_servers"},
      {"server_bandwidth",
       [](SimulationConfig& c) { c.system.server_bandwidth = 0.0; },
       "server_bandwidth"},
      {"server_storage",
       [](SimulationConfig& c) { c.system.server_storage = -1.0; },
       "server_storage"},
      {"video_min_duration",
       [](SimulationConfig& c) { c.system.video_min_duration = 0.0; },
       "video_min_duration"},
      {"duration order",
       [](SimulationConfig& c) {
         c.system.video_max_duration = c.system.video_min_duration / 2.0;
       },
       "video_max_duration"},
      {"num_videos", [](SimulationConfig& c) { c.system.num_videos = 0; },
       "num_videos"},
      {"avg_copies", [](SimulationConfig& c) { c.system.avg_copies = 0.9; },
       "avg_copies"},
      {"view_bandwidth",
       [](SimulationConfig& c) { c.system.view_bandwidth = 0.0; },
       "view_bandwidth"},
      {"view > server bandwidth",
       [](SimulationConfig& c) {
         c.system.view_bandwidth = c.system.server_bandwidth * 2.0;
       },
       "cannot sustain"},
      {"bandwidth_profile size",
       [](SimulationConfig& c) { c.system.bandwidth_profile = {1.0}; },
       "bandwidth_profile"},
      {"storage_profile size",
       [](SimulationConfig& c) { c.system.storage_profile = {1.0}; },
       "storage_profile"},
      {"staging_fraction",
       [](SimulationConfig& c) { c.client.staging_fraction = -0.01; },
       "staging_fraction"},
      {"receive below view",
       [](SimulationConfig& c) { c.client.receive_bandwidth = 0.1; },
       "receive bandwidth"},
      {"load_factor", [](SimulationConfig& c) { c.load_factor = 0.0; },
       "load_factor"},
      {"duration", [](SimulationConfig& c) { c.duration = 0.0; }, "duration"},
      {"warmup", [](SimulationConfig& c) { c.warmup = c.duration * 2.0; },
       "warmup"},
      {"max_chain_length",
       [](SimulationConfig& c) { c.admission.migration.max_chain_length = -1; },
       "max_chain_length"},
      {"buffer-aware scheduler pairing",
       [](SimulationConfig& c) {
         c.admission.buffer_aware = true;
         c.scheduler = SchedulerKind::kEftf;
       },
       "intermittent"},
      {"intermittent_safety_cover",
       [](SimulationConfig& c) { c.intermittent_safety_cover = -1.0; },
       "intermittent_safety_cover"},
      {"switch_latency",
       [](SimulationConfig& c) { c.admission.migration.switch_latency = -1.0; },
       "switch_latency"},
      {"MTBF",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 0.0;
       },
       "MTBF"},
      {"MTTR",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 100.0;
         c.failure.mean_time_to_repair = 0.0;
       },
       "MTTR"},
      {"min_dwell",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 100.0;
         c.failure.min_dwell = -1.0;
       },
       "min_dwell"},
      {"brownout mean_time_between",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 100.0;
         c.failure.brownout.enabled = true;
         c.failure.brownout.mean_time_between = 0.0;
       },
       "brownout mean_time_between"},
      {"brownout mean_duration",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 100.0;
         c.failure.brownout.enabled = true;
         c.failure.brownout.mean_duration = 0.0;
       },
       "brownout mean_duration"},
      {"brownout capacity_factor",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 100.0;
         c.failure.brownout.enabled = true;
         c.failure.brownout.capacity_factor = 1.0;
       },
       "capacity_factor"},
      {"correlated group_size",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 100.0;
         c.failure.correlated.enabled = true;
         c.failure.correlated.group_size = 0;
       },
       "group_size"},
      {"correlated mean_time_between",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 100.0;
         c.failure.correlated.enabled = true;
         c.failure.correlated.mean_time_between = 0.0;
       },
       "correlated mean_time_between"},
      {"correlated mean_duration",
       [](SimulationConfig& c) {
         c.failure.enabled = true;
         c.failure.mean_time_between_failures = 100.0;
         c.failure.correlated.enabled = true;
         c.failure.correlated.mean_duration = 0.0;
       },
       "correlated mean_duration"},
      {"retry max_queue",
       [](SimulationConfig& c) {
         c.failure.retry.enabled = true;
         c.failure.retry.max_queue = 0;
       },
       "max_queue"},
      {"retry max_attempts",
       [](SimulationConfig& c) {
         c.failure.retry.enabled = true;
         c.failure.retry.max_attempts = 0;
       },
       "max_attempts"},
      {"retry backoff_base",
       [](SimulationConfig& c) {
         c.failure.retry.enabled = true;
         c.failure.retry.backoff_base = 0.0;
       },
       "backoff_base"},
      {"retry backoff_cap",
       [](SimulationConfig& c) {
         c.failure.retry.enabled = true;
         c.failure.retry.backoff_base = 10.0;
         c.failure.retry.backoff_cap = 5.0;
       },
       "backoff_cap"},
      {"repair down_threshold",
       [](SimulationConfig& c) {
         c.failure.repair.enabled = true;
         c.failure.repair.down_threshold = 0.0;
       },
       "down_threshold"},
      {"scripted fault server range",
       [](SimulationConfig& c) {
         c.scripted_faults.push_back({10.0, 99, FaultTransitionKind::kDown, 1.0});
       },
       "out-of-range server"},
      {"scripted fault time",
       [](SimulationConfig& c) {
         c.scripted_faults.push_back({-1.0, 0, FaultTransitionKind::kDown, 1.0});
       },
       "time must be >= 0"},
      {"scripted brownout factor",
       [](SimulationConfig& c) {
         c.scripted_faults.push_back(
             {10.0, 0, FaultTransitionKind::kBrownoutBegin, 1.5});
       },
       "capacity_factor"},
      {"drift period",
       [](SimulationConfig& c) {
         c.drift.enabled = true;
         c.drift.period = 0.0;
       },
       "drift period"},
      {"pauses_per_hour",
       [](SimulationConfig& c) {
         c.interactivity.enabled = true;
         c.interactivity.pauses_per_hour = 0.0;
       },
       "pauses_per_hour"},
      {"mean_pause_duration",
       [](SimulationConfig& c) {
         c.interactivity.enabled = true;
         c.interactivity.pauses_per_hour = 6.0;
         c.interactivity.mean_pause_duration = 0.0;
       },
       "mean_pause_duration"},
      {"rejection_threshold",
       [](SimulationConfig& c) {
         c.replication.enabled = true;
         c.replication.rejection_threshold = 0;
       },
       "rejection_threshold"},
      {"replication window",
       [](SimulationConfig& c) {
         c.replication.enabled = true;
         c.replication.window = 0.0;
       },
       "replication window"},
      {"transfer_bandwidth",
       [](SimulationConfig& c) {
         c.replication.enabled = true;
         c.replication.transfer_bandwidth = 0.0;
       },
       "transfer_bandwidth"},
      {"replication max_concurrent",
       [](SimulationConfig& c) {
         c.replication.enabled = true;
         c.replication.max_concurrent = 0;
       },
       "max_concurrent"},
      {"trace capacity",
       [](SimulationConfig& c) {
         c.trace.enabled = true;
         c.trace.capacity = 0;
       },
       "trace capacity"},
      {"probe period",
       [](SimulationConfig& c) {
         c.probe.enabled = true;
         c.probe.period = 0.0;
       },
       "probe period"},
      {"fast_math vs exact_math",
       [](SimulationConfig& c) {
         c.fast_math = true;
         c.exact_math = true;
       },
       "contradictory"},
  };

  for (const Row& row : rows) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    row.mutate(config);
    try {
      config.validate();
      ADD_FAILURE() << row.what << ": expected validate() to throw";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(row.expect), std::string::npos)
          << row.what << ": message \"" << error.what()
          << "\" does not mention \"" << row.expect << "\"";
    }
  }
}

TEST(Config, ValidationRejectsNonFiniteFields) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<std::function<void(SimulationConfig&)>> mutations = {
      [=](SimulationConfig& c) { c.system.server_bandwidth = nan; },
      [=](SimulationConfig& c) { c.system.server_storage = nan; },
      [=](SimulationConfig& c) { c.system.video_min_duration = nan; },
      [=](SimulationConfig& c) { c.system.video_max_duration = inf; },
      [=](SimulationConfig& c) { c.system.avg_copies = nan; },
      [=](SimulationConfig& c) { c.system.view_bandwidth = nan; },
      [=](SimulationConfig& c) { c.client.staging_fraction = nan; },
      [=](SimulationConfig& c) { c.client.receive_bandwidth = nan; },
      [=](SimulationConfig& c) { c.zipf_theta = nan; },
      [=](SimulationConfig& c) { c.load_factor = nan; },
      [=](SimulationConfig& c) { c.load_factor = inf; },
      [=](SimulationConfig& c) { c.duration = nan; },
      [=](SimulationConfig& c) { c.warmup = nan; },
      [=](SimulationConfig& c) { c.intermittent_safety_cover = nan; },
      [=](SimulationConfig& c) {
        c.system.bandwidth_profile = {1.0, 1.0, nan, 1.0, 1.0};
      },
      [=](SimulationConfig& c) {
        c.system.storage_profile = {1.0, 1.0, 1.0, inf, 1.0};
      },
  };
  for (std::size_t i = 0; i < mutations.size(); ++i) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    mutations[i](config);
    EXPECT_THROW(config.validate(), std::invalid_argument) << "mutation " << i;
  }
  // The documented exception: receive_bandwidth = +infinity means "no cap".
  SimulationConfig uncapped;
  uncapped.system = SystemConfig::small_system();
  uncapped.client.receive_bandwidth = inf;
  EXPECT_NO_THROW(uncapped.validate());
}

TEST(Config, NormalizeProfileKeepsTotals) {
  const auto normalized = normalize_profile({1.0, 2.0, 3.0}, 3);
  EXPECT_NEAR(normalized[0] + normalized[1] + normalized[2], 3.0, 1e-12);
  EXPECT_NEAR(normalized[2] / normalized[0], 3.0, 1e-12);
  EXPECT_THROW(normalize_profile({1.0}, 3), std::invalid_argument);
  EXPECT_THROW(normalize_profile({1.0, -1.0, 1.0}, 3), std::invalid_argument);
}

TEST(Config, MakeServersAppliesProfiles) {
  SystemConfig system = SystemConfig::small_system();
  system.bandwidth_profile = {1.0, 1.0, 1.0, 1.0, 6.0};
  const auto servers = make_servers(system);
  ASSERT_EQ(servers.size(), 5u);
  double total = 0.0;
  for (const Server& server : servers) total += server.bandwidth();
  EXPECT_NEAR(total, system.total_bandwidth(), 1e-6);
  EXPECT_GT(servers[4].bandwidth(), servers[0].bandwidth());
}

TEST(Config, MakeServersHomogeneousByDefault) {
  const auto servers = make_servers(SystemConfig::large_system());
  for (const Server& server : servers) {
    EXPECT_DOUBLE_EQ(server.bandwidth(), 300.0);
    EXPECT_DOUBLE_EQ(server.storage_capacity(), gigabytes(150));
  }
}

// --------------------------------------------------------------- metrics

TEST(Metrics, UtilizationClipsToWindow) {
  Metrics metrics(/*window_start=*/100.0, /*window_end=*/200.0,
                  /*total_bandwidth=*/10.0);
  metrics.record_transmission(0.0, 300.0, 10.0);  // only [100,200] counts
  EXPECT_DOUBLE_EQ(metrics.utilization(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 1000.0);
}

TEST(Metrics, PartialOverlapCounts) {
  Metrics metrics(100.0, 200.0, 10.0);
  metrics.record_transmission(150.0, 250.0, 4.0);  // 50 s inside
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 200.0);
  EXPECT_DOUBLE_EQ(metrics.utilization(), 0.2);
}

TEST(Metrics, OutsideWindowIgnored) {
  Metrics metrics(100.0, 200.0, 10.0);
  metrics.record_transmission(0.0, 99.0, 10.0);
  metrics.record_transmission(200.0, 300.0, 10.0);
  metrics.record_arrival(50.0);
  metrics.record_rejection(250.0);
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 0.0);
  EXPECT_EQ(metrics.arrivals(), 0u);
  EXPECT_EQ(metrics.rejects(), 0u);
}

TEST(Metrics, RatiosFromCounts) {
  Metrics metrics(0.0, 100.0, 10.0);
  for (int i = 0; i < 8; ++i) metrics.record_arrival(10.0);
  for (int i = 0; i < 6; ++i) metrics.record_acceptance(10.0, i % 2 == 0);
  for (int i = 0; i < 2; ++i) metrics.record_rejection(10.0);
  metrics.record_migration_chain(10.0, 2);
  EXPECT_DOUBLE_EQ(metrics.rejection_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(metrics.acceptance_ratio(), 0.75);
  EXPECT_EQ(metrics.accepts_via_migration(), 3u);
  EXPECT_DOUBLE_EQ(metrics.migrations_per_arrival(), 0.25);
}

TEST(Metrics, ZeroRateIgnored) {
  Metrics metrics(0.0, 100.0, 10.0);
  metrics.record_transmission(0.0, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 0.0);
}

TEST(Metrics, EmptyRatiosAreZero) {
  Metrics metrics(0.0, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(metrics.rejection_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.migrations_per_arrival(), 0.0);
}

TEST(Metrics, UnderflowAndDrops) {
  Metrics metrics(0.0, 100.0, 10.0);
  metrics.record_underflow(5.0, 12.0);
  metrics.record_drop(6.0);
  metrics.record_completion(7.0);
  EXPECT_EQ(metrics.underflow_events(), 1u);
  EXPECT_DOUBLE_EQ(metrics.underflow_megabits(), 12.0);
  EXPECT_EQ(metrics.drops(), 1u);
  EXPECT_EQ(metrics.completions(), 1u);
}

// --------------------------------------------------------------- policy matrix

TEST(PolicyMatrix, EightPoliciesInPaperOrder) {
  const auto& policies = figure6_policies();
  ASSERT_EQ(policies.size(), 8u);
  EXPECT_EQ(policies[0].label, "P1");
  EXPECT_EQ(policies[7].label, "P8");
  // P1-P4 even, P5-P8 predictive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(policies[static_cast<std::size_t>(i)].placement, PlacementKind::kEven);
    EXPECT_EQ(policies[static_cast<std::size_t>(i + 4)].placement,
              PlacementKind::kPredictive);
  }
  // Migration on P3, P4, P7, P8.
  EXPECT_FALSE(policies[0].migration);
  EXPECT_FALSE(policies[1].migration);
  EXPECT_TRUE(policies[2].migration);
  EXPECT_TRUE(policies[3].migration);
  // Staging 20% on even indices P2, P4, P6, P8.
  EXPECT_DOUBLE_EQ(policies[1].staging_fraction, 0.2);
  EXPECT_DOUBLE_EQ(policies[3].staging_fraction, 0.2);
  EXPECT_DOUBLE_EQ(policies[0].staging_fraction, 0.0);
}

TEST(PolicyMatrix, ApplyPolicySetsKnobs) {
  SimulationConfig base;
  base.system = SystemConfig::small_system();
  base.client.receive_bandwidth = 30.0;
  const SimulationConfig p4 = apply_policy(base, figure6_policies()[3]);
  EXPECT_EQ(p4.placement.kind, PlacementKind::kEven);
  EXPECT_TRUE(p4.admission.migration.enabled);
  EXPECT_EQ(p4.admission.migration.max_chain_length, 1);
  EXPECT_EQ(p4.admission.migration.max_hops_per_request, 1);
  EXPECT_DOUBLE_EQ(p4.client.staging_fraction, 0.2);
  EXPECT_DOUBLE_EQ(p4.client.receive_bandwidth, 30.0);  // preserved
}

TEST(PolicyMatrix, DescriptionsReadable) {
  EXPECT_EQ(figure6_policies()[3].description(), "even + migration + 20% buffer");
  EXPECT_EQ(figure6_policies()[4].description(),
            "predictive + no-migration + 0% buffer");
}

// --------------------------------------------------------------- failure timeline

TEST(FailureTimeline, DisabledIsEmpty) {
  FailureConfig config;
  Rng rng(1);
  EXPECT_TRUE(generate_fault_schedule(config, 10, hours(100), rng).empty());
}

TEST(FailureTimeline, AlternatesPerServerAndSorted) {
  FailureConfig config;
  config.enabled = true;
  config.mean_time_between_failures = hours(10);
  config.mean_time_to_repair = hours(1);
  Rng rng(2);
  const auto events = generate_fault_schedule(config, 4, hours(200), rng);
  ASSERT_FALSE(events.empty());
  Seconds last = 0.0;
  std::vector<bool> down(4, false);
  for (const FaultTransition& event : events) {
    EXPECT_GE(event.time, last);
    last = event.time;
    ASSERT_GE(event.server, 0);
    ASSERT_LT(event.server, 4);
    // Per server: down, up, down, up...
    const auto s = static_cast<std::size_t>(event.server);
    const bool up = event.kind == FaultTransitionKind::kUp;
    ASSERT_TRUE(up || event.kind == FaultTransitionKind::kDown);
    EXPECT_EQ(up, down[s]);
    down[s] = !up;
  }
}

TEST(FailureTimeline, RateRoughlyMatchesMtbf) {
  FailureConfig config;
  config.enabled = true;
  config.mean_time_between_failures = hours(10);
  config.mean_time_to_repair = hours(0.1);
  Rng rng(3);
  const auto events = generate_fault_schedule(config, 1, hours(10000), rng);
  int failures = 0;
  for (const FaultTransition& event : events) {
    if (event.kind == FaultTransitionKind::kDown) ++failures;
  }
  // ~1000 expected failures; allow wide slack.
  EXPECT_GT(failures, 800);
  EXPECT_LT(failures, 1200);
}

}  // namespace
}  // namespace vodsim
