// Tests for engine support modules: configuration presets/validation,
// metrics windowing, the Figure 6 policy matrix, failure timelines.

#include <gtest/gtest.h>

#include "vodsim/engine/config.h"
#include "vodsim/fault/schedule.h"
#include "vodsim/engine/metrics.h"
#include "vodsim/engine/policy_matrix.h"

namespace vodsim {
namespace {

// --------------------------------------------------------------- config

TEST(Config, SmallSystemPreset) {
  const SystemConfig system = SystemConfig::small_system();
  EXPECT_EQ(system.num_servers, 5);
  EXPECT_DOUBLE_EQ(system.server_bandwidth, 100.0);
  EXPECT_DOUBLE_EQ(system.server_storage, gigabytes(100));
  EXPECT_DOUBLE_EQ(system.video_min_duration, minutes(10));
  EXPECT_DOUBLE_EQ(system.video_max_duration, minutes(30));
  EXPECT_DOUBLE_EQ(system.avg_copies, 2.2);
  EXPECT_NEAR(system.svbr(), 33.33, 0.01);
  EXPECT_DOUBLE_EQ(system.total_bandwidth(), 500.0);
}

TEST(Config, LargeSystemPreset) {
  const SystemConfig system = SystemConfig::large_system();
  EXPECT_EQ(system.num_servers, 20);
  EXPECT_DOUBLE_EQ(system.server_bandwidth, 300.0);
  EXPECT_DOUBLE_EQ(system.svbr(), 100.0);
  EXPECT_DOUBLE_EQ(system.total_bandwidth(), 6000.0);
  EXPECT_DOUBLE_EQ(system.mean_video_duration(), hours(1.5));
}

TEST(Config, StoragePhysicallyFitsPresetCatalogs) {
  // The replica budget must fit on disk for both presets — this pins the
  // catalog-size assumption documented in DESIGN.md.
  for (const SystemConfig& system :
       {SystemConfig::small_system(), SystemConfig::large_system()}) {
    const double copies = static_cast<double>(system.num_videos) * system.avg_copies;
    const double bits_needed = copies * system.mean_video_size();
    const double bits_available =
        static_cast<double>(system.num_servers) * system.server_storage;
    EXPECT_LT(bits_needed, bits_available) << system.name;
  }
}

TEST(Config, ArrivalRateSaturatesCapacity) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  // rate * mean video size == aggregate bandwidth.
  EXPECT_NEAR(config.arrival_rate() * config.system.mean_video_size(),
              config.system.total_bandwidth(), 1e-9);
  config.load_factor = 0.5;
  EXPECT_NEAR(config.arrival_rate() * config.system.mean_video_size(),
              config.system.total_bandwidth() * 0.5, 1e-9);
}

TEST(Config, StagingCapacityFromFraction) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.client.staging_fraction = 0.2;
  EXPECT_DOUBLE_EQ(config.staging_capacity(),
                   0.2 * config.system.mean_video_size());
}

TEST(Config, ValidationCatchesNonsense) {
  SimulationConfig good;
  good.system = SystemConfig::small_system();
  EXPECT_NO_THROW(good.validate());

  auto expect_invalid = [](auto mutate) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  expect_invalid([](SimulationConfig& c) { c.system.num_servers = 0; });
  expect_invalid([](SimulationConfig& c) { c.system.server_bandwidth = -1.0; });
  expect_invalid([](SimulationConfig& c) { c.system.view_bandwidth = 200.0; });
  expect_invalid([](SimulationConfig& c) { c.system.avg_copies = 0.5; });
  expect_invalid([](SimulationConfig& c) { c.client.staging_fraction = -0.1; });
  expect_invalid([](SimulationConfig& c) { c.client.receive_bandwidth = 1.0; });
  expect_invalid([](SimulationConfig& c) { c.load_factor = 0.0; });
  expect_invalid([](SimulationConfig& c) { c.warmup = c.duration; });
  expect_invalid([](SimulationConfig& c) {
    c.system.bandwidth_profile = {1.0, 2.0};  // wrong size for 5 servers
  });
  expect_invalid([](SimulationConfig& c) {
    c.failure.enabled = true;
    c.failure.mean_time_between_failures = 0.0;
  });
}

TEST(Config, NormalizeProfileKeepsTotals) {
  const auto normalized = normalize_profile({1.0, 2.0, 3.0}, 3);
  EXPECT_NEAR(normalized[0] + normalized[1] + normalized[2], 3.0, 1e-12);
  EXPECT_NEAR(normalized[2] / normalized[0], 3.0, 1e-12);
  EXPECT_THROW(normalize_profile({1.0}, 3), std::invalid_argument);
  EXPECT_THROW(normalize_profile({1.0, -1.0, 1.0}, 3), std::invalid_argument);
}

TEST(Config, MakeServersAppliesProfiles) {
  SystemConfig system = SystemConfig::small_system();
  system.bandwidth_profile = {1.0, 1.0, 1.0, 1.0, 6.0};
  const auto servers = make_servers(system);
  ASSERT_EQ(servers.size(), 5u);
  double total = 0.0;
  for (const Server& server : servers) total += server.bandwidth();
  EXPECT_NEAR(total, system.total_bandwidth(), 1e-6);
  EXPECT_GT(servers[4].bandwidth(), servers[0].bandwidth());
}

TEST(Config, MakeServersHomogeneousByDefault) {
  const auto servers = make_servers(SystemConfig::large_system());
  for (const Server& server : servers) {
    EXPECT_DOUBLE_EQ(server.bandwidth(), 300.0);
    EXPECT_DOUBLE_EQ(server.storage_capacity(), gigabytes(150));
  }
}

// --------------------------------------------------------------- metrics

TEST(Metrics, UtilizationClipsToWindow) {
  Metrics metrics(/*window_start=*/100.0, /*window_end=*/200.0,
                  /*total_bandwidth=*/10.0);
  metrics.record_transmission(0.0, 300.0, 10.0);  // only [100,200] counts
  EXPECT_DOUBLE_EQ(metrics.utilization(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 1000.0);
}

TEST(Metrics, PartialOverlapCounts) {
  Metrics metrics(100.0, 200.0, 10.0);
  metrics.record_transmission(150.0, 250.0, 4.0);  // 50 s inside
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 200.0);
  EXPECT_DOUBLE_EQ(metrics.utilization(), 0.2);
}

TEST(Metrics, OutsideWindowIgnored) {
  Metrics metrics(100.0, 200.0, 10.0);
  metrics.record_transmission(0.0, 99.0, 10.0);
  metrics.record_transmission(200.0, 300.0, 10.0);
  metrics.record_arrival(50.0);
  metrics.record_rejection(250.0);
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 0.0);
  EXPECT_EQ(metrics.arrivals(), 0u);
  EXPECT_EQ(metrics.rejects(), 0u);
}

TEST(Metrics, RatiosFromCounts) {
  Metrics metrics(0.0, 100.0, 10.0);
  for (int i = 0; i < 8; ++i) metrics.record_arrival(10.0);
  for (int i = 0; i < 6; ++i) metrics.record_acceptance(10.0, i % 2 == 0);
  for (int i = 0; i < 2; ++i) metrics.record_rejection(10.0);
  metrics.record_migration_chain(10.0, 2);
  EXPECT_DOUBLE_EQ(metrics.rejection_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(metrics.acceptance_ratio(), 0.75);
  EXPECT_EQ(metrics.accepts_via_migration(), 3u);
  EXPECT_DOUBLE_EQ(metrics.migrations_per_arrival(), 0.25);
}

TEST(Metrics, ZeroRateIgnored) {
  Metrics metrics(0.0, 100.0, 10.0);
  metrics.record_transmission(0.0, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(metrics.transmitted(), 0.0);
}

TEST(Metrics, EmptyRatiosAreZero) {
  Metrics metrics(0.0, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(metrics.rejection_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.migrations_per_arrival(), 0.0);
}

TEST(Metrics, UnderflowAndDrops) {
  Metrics metrics(0.0, 100.0, 10.0);
  metrics.record_underflow(5.0, 12.0);
  metrics.record_drop(6.0);
  metrics.record_completion(7.0);
  EXPECT_EQ(metrics.underflow_events(), 1u);
  EXPECT_DOUBLE_EQ(metrics.underflow_megabits(), 12.0);
  EXPECT_EQ(metrics.drops(), 1u);
  EXPECT_EQ(metrics.completions(), 1u);
}

// --------------------------------------------------------------- policy matrix

TEST(PolicyMatrix, EightPoliciesInPaperOrder) {
  const auto& policies = figure6_policies();
  ASSERT_EQ(policies.size(), 8u);
  EXPECT_EQ(policies[0].label, "P1");
  EXPECT_EQ(policies[7].label, "P8");
  // P1-P4 even, P5-P8 predictive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(policies[static_cast<std::size_t>(i)].placement, PlacementKind::kEven);
    EXPECT_EQ(policies[static_cast<std::size_t>(i + 4)].placement,
              PlacementKind::kPredictive);
  }
  // Migration on P3, P4, P7, P8.
  EXPECT_FALSE(policies[0].migration);
  EXPECT_FALSE(policies[1].migration);
  EXPECT_TRUE(policies[2].migration);
  EXPECT_TRUE(policies[3].migration);
  // Staging 20% on even indices P2, P4, P6, P8.
  EXPECT_DOUBLE_EQ(policies[1].staging_fraction, 0.2);
  EXPECT_DOUBLE_EQ(policies[3].staging_fraction, 0.2);
  EXPECT_DOUBLE_EQ(policies[0].staging_fraction, 0.0);
}

TEST(PolicyMatrix, ApplyPolicySetsKnobs) {
  SimulationConfig base;
  base.system = SystemConfig::small_system();
  base.client.receive_bandwidth = 30.0;
  const SimulationConfig p4 = apply_policy(base, figure6_policies()[3]);
  EXPECT_EQ(p4.placement.kind, PlacementKind::kEven);
  EXPECT_TRUE(p4.admission.migration.enabled);
  EXPECT_EQ(p4.admission.migration.max_chain_length, 1);
  EXPECT_EQ(p4.admission.migration.max_hops_per_request, 1);
  EXPECT_DOUBLE_EQ(p4.client.staging_fraction, 0.2);
  EXPECT_DOUBLE_EQ(p4.client.receive_bandwidth, 30.0);  // preserved
}

TEST(PolicyMatrix, DescriptionsReadable) {
  EXPECT_EQ(figure6_policies()[3].description(), "even + migration + 20% buffer");
  EXPECT_EQ(figure6_policies()[4].description(),
            "predictive + no-migration + 0% buffer");
}

// --------------------------------------------------------------- failure timeline

TEST(FailureTimeline, DisabledIsEmpty) {
  FailureConfig config;
  Rng rng(1);
  EXPECT_TRUE(generate_fault_schedule(config, 10, hours(100), rng).empty());
}

TEST(FailureTimeline, AlternatesPerServerAndSorted) {
  FailureConfig config;
  config.enabled = true;
  config.mean_time_between_failures = hours(10);
  config.mean_time_to_repair = hours(1);
  Rng rng(2);
  const auto events = generate_fault_schedule(config, 4, hours(200), rng);
  ASSERT_FALSE(events.empty());
  Seconds last = 0.0;
  std::vector<bool> down(4, false);
  for (const FaultTransition& event : events) {
    EXPECT_GE(event.time, last);
    last = event.time;
    ASSERT_GE(event.server, 0);
    ASSERT_LT(event.server, 4);
    // Per server: down, up, down, up...
    const auto s = static_cast<std::size_t>(event.server);
    const bool up = event.kind == FaultTransitionKind::kUp;
    ASSERT_TRUE(up || event.kind == FaultTransitionKind::kDown);
    EXPECT_EQ(up, down[s]);
    down[s] = !up;
  }
}

TEST(FailureTimeline, RateRoughlyMatchesMtbf) {
  FailureConfig config;
  config.enabled = true;
  config.mean_time_between_failures = hours(10);
  config.mean_time_to_repair = hours(0.1);
  Rng rng(3);
  const auto events = generate_fault_schedule(config, 1, hours(10000), rng);
  int failures = 0;
  for (const FaultTransition& event : events) {
    if (event.kind == FaultTransitionKind::kDown) ++failures;
  }
  // ~1000 expected failures; allow wide slack.
  EXPECT_GT(failures, 800);
  EXPECT_LT(failures, 1200);
}

}  // namespace
}  // namespace vodsim
