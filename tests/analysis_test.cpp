// Tests for the analytical models: Erlang-B and the SVBR utilization curve.

#include <gtest/gtest.h>

#include "vodsim/analysis/erlang.h"
#include "vodsim/analysis/svbr.h"

namespace vodsim {
namespace {

TEST(ErlangB, KnownValues) {
  // Classic telephony table entries.
  EXPECT_NEAR(erlang_b_blocking(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b_blocking(2, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(erlang_b_blocking(3, 2.0), 0.210526, 1e-5);
  EXPECT_NEAR(erlang_b_blocking(10, 5.0), 0.018385, 1e-5);
}

TEST(ErlangB, ZeroLoadNeverBlocks) {
  EXPECT_DOUBLE_EQ(erlang_b_blocking(5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_b_blocking(0, 0.0), 1.0);
}

TEST(ErlangB, MonotoneInChannelsAndLoad) {
  // More channels -> less blocking; more load -> more blocking.
  for (int c = 1; c < 50; ++c) {
    EXPECT_LT(erlang_b_blocking(c + 1, 10.0), erlang_b_blocking(c, 10.0));
  }
  for (double a = 1.0; a < 20.0; a += 1.0) {
    EXPECT_GT(erlang_b_blocking(10, a + 1.0), erlang_b_blocking(10, a));
  }
}

TEST(ErlangB, StableForLargeSystems) {
  // The forward recursion must not overflow/underflow at paper scale
  // (SVBR = 100) and beyond.
  const double b = erlang_b_blocking(1000, 1000.0);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 0.1);
}

TEST(ErlangB, CarriedLoadIdentity) {
  const double offered = 33.0;
  const int channels = 33;
  const double carried = erlang_b_carried(channels, offered);
  EXPECT_NEAR(carried, offered * (1.0 - erlang_b_blocking(channels, offered)),
              1e-12);
  EXPECT_LT(carried, static_cast<double>(channels));
}

TEST(Svbr, UtilizationRisesWithSvbr) {
  // The paper's point: at 100% offered load, bigger SVBR = higher
  // achievable utilization (statistical multiplexing).
  double previous = 0.0;
  for (int svbr : {1, 2, 5, 10, 33, 100, 300}) {
    const double u = analytical_utilization(svbr, 1.0);
    EXPECT_GT(u, previous);
    EXPECT_LT(u, 1.0);
    previous = u;
  }
  // SVBR 100 (the large system) already exceeds 90%.
  EXPECT_GT(analytical_utilization(100, 1.0), 0.9);
}

TEST(Svbr, LightLoadIsCarriedAlmostEntirely) {
  EXPECT_NEAR(analytical_utilization(33, 0.5), 0.5, 1e-3);
  EXPECT_LT(analytical_rejection(33, 0.5), 1e-3);
}

TEST(Svbr, RejectionComplementsUtilizationAtFullLoad) {
  // At load factor 1, carried = 1 - B, so utilization + rejection = 1.
  for (int svbr : {5, 20, 100}) {
    EXPECT_NEAR(analytical_utilization(svbr, 1.0) + analytical_rejection(svbr, 1.0),
                1.0, 1e-12);
  }
}

TEST(Svbr, OverloadSaturates) {
  const double u = analytical_utilization(33, 2.0);
  EXPECT_GT(u, 0.95);
  EXPECT_LT(u, 1.0);
  EXPECT_GT(analytical_rejection(33, 2.0), 0.4);
}

}  // namespace
}  // namespace vodsim
