// Tests for the intermittent scheduler and buffer-aware admission — the
// beyond-minimum-flow extension (paper §3.3 calls the optimal version
// impractical; this is the bounded heuristic).

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "vodsim/engine/vod_simulation.h"
#include "vodsim/sched/intermittent.h"

namespace vodsim {
namespace {

constexpr Mbps kView = 3.0;

Video make_video(VideoId id, Seconds duration) {
  Video video;
  video.id = id;
  video.duration = duration;
  video.view_bandwidth = kView;
  return video;
}

/// Builds a streaming request with a chosen staged level. Every request is
/// advanced over the same 1000-second prefix so they share a decision time
/// with playback still in progress (prefix = level + 1000 s of viewing).
std::unique_ptr<Request> make_request(RequestId id, Megabits remaining,
                                      Megabits level, Megabits cap = 1e9,
                                      Mbps receive = 30.0) {
  constexpr Seconds kPrefixTime = 1000.0;
  const Megabits prefix = level + kView * kPrefixTime;
  auto request = std::make_unique<Request>(
      id, make_video(0, (remaining + prefix) / kView), 0.0,
      ClientProfile{cap, receive});
  request->begin_streaming(0.0, 0);
  const Mbps rate = prefix / kPrefixTime;
  EXPECT_LE(rate, receive + 1e-9) << "fixture prefix exceeds receive cap";
  request->set_allocation(0.0, rate);
  request->advance(kPrefixTime);
  request->set_allocation(kPrefixTime, 0.0);
  return request;
}

struct ActiveSet {
  std::vector<std::unique_ptr<Request>> owner;
  std::vector<Request*> active;
  Seconds now = 0.0;

  Request& add(std::unique_ptr<Request> request) {
    request->active_index = active.size();
    now = std::max(now, request->last_update());
    active.push_back(request.get());
    owner.push_back(std::move(request));
    return *active.back();
  }

  void sync() {
    for (auto& request : owner) {
      request->advance(now);
      request->set_allocation(now, 0.0);
    }
  }
};

TEST(Intermittent, UrgentStreamsFedFirst) {
  ActiveSet set;
  Request& starving = set.add(make_request(1, 1000.0, 0.0));      // no cover
  Request& coasting = set.add(make_request(2, 1000.0, 600.0));    // 200 s cover
  set.sync();
  IntermittentScheduler scheduler(10.0);
  std::vector<Mbps> rates;
  scheduler.allocate(set.now, kView, set.active, rates);  // only 3 Mb/s total
  EXPECT_DOUBLE_EQ(rates[starving.active_index], kView);
  EXPECT_DOUBLE_EQ(rates[coasting.active_index], 0.0);  // starved on purpose
}

TEST(Intermittent, SlackGoesEftfAfterSafety) {
  ActiveSet set;
  Request& shortest = set.add(make_request(1, 100.0, 0.0));
  Request& longest = set.add(make_request(2, 5000.0, 0.0));
  set.sync();
  IntermittentScheduler scheduler(10.0);
  std::vector<Mbps> rates;
  scheduler.allocate(set.now, 100.0, set.active, rates);
  // Both urgent (empty buffers): 3 each; extra goes earliest-finish-first.
  EXPECT_DOUBLE_EQ(rates[shortest.active_index], 30.0);
  EXPECT_DOUBLE_EQ(rates[longest.active_index], 30.0);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_LE(total, 100.0 + 1e-9);
}

TEST(Intermittent, OvercommittedCrunchRationsProportionally) {
  ActiveSet set;
  Request& empty = set.add(make_request(1, 1000.0, 0.0));
  Request& thin = set.add(make_request(2, 1000.0, 6.0));   // 2 s cover
  Request& thick = set.add(make_request(3, 1000.0, 24.0)); // 8 s cover
  set.sync();
  IntermittentScheduler scheduler(10.0);
  std::vector<Mbps> rates;
  // Capacity covers only two of the three urgent drains: the shortfall is
  // shared proportionally (stable membership — all-or-nothing feeding would
  // chatter as near-equal levels leapfrog each other).
  scheduler.allocate(set.now, 2.0 * kView, set.active, rates);
  EXPECT_DOUBLE_EQ(rates[empty.active_index], 2.0);
  EXPECT_DOUBLE_EQ(rates[thin.active_index], 2.0);
  EXPECT_DOUBLE_EQ(rates[thick.active_index], 2.0);
}

TEST(Intermittent, UrgencyLatchHasHysteresis) {
  ActiveSet set;
  // 5 s of cover: below the 10 s threshold -> latches urgent.
  Request& request = set.add(make_request(1, 2000.0, 15.0));
  set.sync();
  IntermittentScheduler scheduler(10.0);
  std::vector<Mbps> rates;
  scheduler.allocate(set.now, 100.0, set.active, rates);
  EXPECT_TRUE(request.workahead_urgent);
  EXPECT_GE(rates[0], kView);

  // Refill to 15 s of cover (45 Mb): above threshold but below 2x -> the
  // latch holds.
  request.set_allocation(set.now, 33.0);  // +30 net over 1 s
  request.advance(set.now + 1.0);
  request.set_allocation(set.now + 1.0, 0.0);
  scheduler.allocate(set.now + 1.0, 100.0, set.active, rates);
  EXPECT_TRUE(request.workahead_urgent);

  // Refill past 2x threshold (>= 60 Mb): latch releases.
  request.set_allocation(set.now + 1.0, 33.0);
  request.advance(set.now + 2.0);
  request.set_allocation(set.now + 2.0, 0.0);
  scheduler.allocate(set.now + 2.0, 100.0, set.active, rates);
  EXPECT_FALSE(request.workahead_urgent);
}

TEST(Intermittent, NeverExceedsCapacityOrReceiveCaps) {
  Rng rng(77);
  IntermittentScheduler scheduler(10.0);
  for (int instance = 0; instance < 40; ++instance) {
    ActiveSet set;
    const int n = 1 + static_cast<int>(rng.uniform_int(10));
    for (int i = 0; i < n; ++i) {
      set.add(make_request(i, rng.uniform(50.0, 3000.0),
                           rng.uniform(0.0, 40.0), rng.uniform(50.0, 400.0),
                           rng.uniform(5.0, 40.0)));
    }
    set.sync();
    const Mbps capacity = rng.uniform(1.0, 4.0) * kView * n;
    std::vector<Mbps> rates;
    scheduler.allocate(set.now, capacity, set.active, rates);
    double total = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      EXPECT_GE(rates[i], 0.0);
      EXPECT_LE(rates[i], set.active[i]->receive_bandwidth() + 1e-9);
      if (set.active[i]->buffer_full()) {
        EXPECT_LE(rates[i], set.active[i]->view_bandwidth() + 1e-9);
      }
      total += rates[i];
    }
    EXPECT_LE(total, capacity + 1e-6);
  }
}

TEST(Intermittent, FactoryRoundTrip) {
  EXPECT_EQ(scheduler_kind_from_string("intermittent"),
            SchedulerKind::kIntermittent);
  EXPECT_EQ(make_scheduler(SchedulerKind::kIntermittent)->name(), "intermittent");
}

// ------------------------------------------------------- buffer-aware admission

TEST(BufferAware, RequiresIntermittentScheduler) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.admission.buffer_aware = true;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.scheduler = SchedulerKind::kIntermittent;
  EXPECT_NO_THROW(config.validate());
}

SimulationConfig buffer_aware_config(std::uint64_t seed) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.zipf_theta = 0.271;
  config.duration = hours(20);
  config.warmup = hours(2);
  config.seed = seed;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  config.scheduler = SchedulerKind::kIntermittent;
  config.admission.buffer_aware = true;
  config.admission.buffer_aware_horizon = 30.0;
  return config;
}

TEST(BufferAware, FeasibilityIgnoresCoastingStreams) {
  // A nominally full server whose streams all coast on fat buffers is
  // feasible under buffer-aware admission, infeasible under minimum flow.
  Video video = make_video(0, 2000.0);
  std::vector<Server> servers;
  servers.emplace_back(0, 3.0 * kView, 1e9);  // room for 3 nominal streams
  ASSERT_TRUE(servers[0].add_replica(video));
  std::vector<std::unique_ptr<Request>> owner;
  for (int i = 0; i < 3; ++i) {
    owner.push_back(make_request(i, 3000.0, /*level=*/600.0));  // 200 s cover
    servers[0].attach(*owner.back());
  }
  ASSERT_FALSE(servers[0].can_admit(kView));  // minimum-flow rule: full

  ReplicaDirectory directory(1, servers);
  AdmissionConfig config;
  config.buffer_aware = true;
  config.buffer_aware_horizon = 30.0;
  AdmissionController aggressive(config, directory);
  AdmissionConfig conservative_config;
  AdmissionController conservative(conservative_config, directory);

  EXPECT_TRUE(aggressive.feasible(servers[0], kView));
  EXPECT_FALSE(conservative.feasible(servers[0], kView));

  Rng rng(1);
  EXPECT_TRUE(aggressive.decide(0.0, 0, kView, servers, rng).accepted);
  EXPECT_FALSE(conservative.decide(0.0, 0, kView, servers, rng).accepted);
}

TEST(BufferAware, AggressiveAdmissionStillBounded) {
  SimulationConfig aggressive = buffer_aware_config(61);
  VodSimulation simulation(aggressive);
  const Metrics& metrics = simulation.run();
  EXPECT_LE(metrics.utilization(), 1.0 + 1e-9);
  EXPECT_GT(metrics.accepts(), 0u);
}

TEST(BufferAware, IntermittentAloneKeepsContinuity) {
  // The intermittent scheduler under the *paper's* conservative admission:
  // starving buffered streams is safe because commitments fit the link.
  SimulationConfig config = buffer_aware_config(62);
  config.admission.buffer_aware = false;  // conservative admission
  VodSimulation simulation(config);
  simulation.run();
  EXPECT_EQ(simulation.continuity_violations(), 0u);
}

TEST(BufferAware, ViolationsAreCountedNotHidden) {
  // With aggressive admission the engine must run to completion and report
  // any continuity damage honestly (it may be zero on easy seeds; the point
  // is the accounting path works end to end).
  SimulationConfig config = buffer_aware_config(63);
  config.load_factor = 1.3;  // stress it
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();
  EXPECT_LE(metrics.utilization(), 1.0 + 1e-9);
  // continuity_violations() covers the whole run; the metric is clipped to
  // the post-warmup window, so it can only be smaller.
  EXPECT_GE(simulation.continuity_violations(), metrics.underflow_events());
  EXPECT_GT(simulation.continuity_violations(), 0u);  // 1.3x load must hurt
}

}  // namespace
}  // namespace vodsim
