// Tests for vodsim/stats: Welford accumulator, Student-t, histogram,
// time-weighted averages.

#include <gtest/gtest.h>

#include <cmath>

#include "vodsim/stats/accumulator.h"
#include "vodsim/stats/batch_means.h"
#include "vodsim/util/rng.h"
#include "vodsim/stats/histogram.h"
#include "vodsim/stats/student_t.h"
#include "vodsim/stats/time_weighted.h"

namespace vodsim {
namespace {

// ---------------------------------------------------------------- accumulator

TEST(Accumulator, MeanAndVariance) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 4.571428571, 1e-9);  // unbiased
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci_half_width(), 0.0);
}

TEST(Accumulator, SingleSampleHasZeroVariance) {
  Accumulator acc;
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci_half_width(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Accumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Accumulator, CiHalfWidthKnownCase) {
  // Five samples, stddev 1: half-width = t_{4,0.975} / sqrt(5) = 2.776/2.236.
  Accumulator acc;
  for (double x : {-1.0, -0.5, 0.0, 0.5, 1.0}) acc.add(x);
  const double t = student_t_quantile(4, 0.975);
  EXPECT_NEAR(acc.ci_half_width(0.95), t * acc.stddev() / std::sqrt(5.0), 1e-12);
}

TEST(Accumulator, FormatMeanCi) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  const std::string text = format_mean_ci(acc, 2);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("±"), std::string::npos);
}

// ---------------------------------------------------------------- batch means

TEST(BatchMeans, BatchesAndMean) {
  BatchMeans bm(/*batch_size=*/4);
  for (int i = 1; i <= 12; ++i) bm.add(static_cast<double>(i));
  EXPECT_EQ(bm.batch_count(), 3u);
  EXPECT_EQ(bm.observations(), 12u);
  // Batch means: 2.5, 6.5, 10.5 -> grand mean 6.5.
  EXPECT_DOUBLE_EQ(bm.mean(), 6.5);
  EXPECT_GT(bm.ci_half_width(), 0.0);
}

TEST(BatchMeans, WarmupDiscarded) {
  BatchMeans bm(/*batch_size=*/2, /*warmup=*/4);
  for (double x : {100.0, 100.0, 100.0, 100.0, 1.0, 3.0}) bm.add(x);
  EXPECT_EQ(bm.batch_count(), 1u);
  EXPECT_DOUBLE_EQ(bm.mean(), 2.0);  // warmup spikes excluded
}

TEST(BatchMeans, PartialTailBatchIgnored) {
  BatchMeans bm(/*batch_size=*/5);
  for (int i = 0; i < 9; ++i) bm.add(1.0);
  EXPECT_EQ(bm.batch_count(), 1u);
}

TEST(BatchMeans, IidDataHasSmallAutocorrelation) {
  Rng rng(123);
  BatchMeans bm(/*batch_size=*/50);
  for (int i = 0; i < 50000; ++i) bm.add(rng.uniform());
  EXPECT_EQ(bm.batch_count(), 1000u);
  EXPECT_NEAR(bm.mean(), 0.5, 0.01);
  EXPECT_LT(std::fabs(bm.batch_lag1_autocorrelation()), 0.1);
}

TEST(BatchMeans, CorrelatedDataFlagsItself) {
  // AR(1) with strong persistence and batch size 1: batch means inherit the
  // autocorrelation, which the diagnostic must expose.
  Rng rng(321);
  BatchMeans bm(/*batch_size=*/1);
  double x = 0.0;
  for (int i = 0; i < 20000; ++i) {
    x = 0.95 * x + rng.uniform(-1.0, 1.0);
    bm.add(x);
  }
  EXPECT_GT(bm.batch_lag1_autocorrelation(), 0.8);
}

TEST(BatchMeans, TooFewBatchesSafe) {
  BatchMeans bm(10);
  bm.add(1.0);
  EXPECT_DOUBLE_EQ(bm.ci_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(bm.batch_lag1_autocorrelation(), 0.0);
}

TEST(BatchMeans, OneCompleteBatchCiIsZero) {
  // Exactly one batch: a Student-t CI needs >= 2, so the half-width must
  // degrade to 0 rather than divide by zero degrees of freedom.
  BatchMeans bm(/*batch_size=*/3);
  for (double x : {1.0, 2.0, 3.0}) bm.add(x);
  EXPECT_EQ(bm.batch_count(), 1u);
  EXPECT_DOUBLE_EQ(bm.mean(), 2.0);
  EXPECT_DOUBLE_EQ(bm.ci_half_width(), 0.0);
}

TEST(BatchMeans, NonDivisibleRunLengthExcludesTail) {
  // 10 observations, batch size 4: the mean covers the first 8 only — the
  // partial tail must not bias the estimate.
  BatchMeans bm(/*batch_size=*/4);
  for (int i = 1; i <= 10; ++i) bm.add(static_cast<double>(i));
  EXPECT_EQ(bm.batch_count(), 2u);
  EXPECT_EQ(bm.observations(), 10u);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.5);  // mean of 1..8, not 1..10
}

TEST(BatchMeans, ConstantDataHasZeroAutocorrelation) {
  // Zero variance makes the autocorrelation denominator 0; the diagnostic
  // must return 0, not NaN.
  BatchMeans bm(/*batch_size=*/2);
  for (int i = 0; i < 10; ++i) bm.add(7.0);
  EXPECT_EQ(bm.batch_count(), 5u);
  EXPECT_DOUBLE_EQ(bm.batch_lag1_autocorrelation(), 0.0);
  EXPECT_DOUBLE_EQ(bm.ci_half_width(), 0.0);
}

TEST(BatchMeans, WarmupLongerThanRunIsSafe) {
  BatchMeans bm(/*batch_size=*/2, /*warmup=*/100);
  for (int i = 0; i < 5; ++i) bm.add(1.0);
  EXPECT_EQ(bm.batch_count(), 0u);
  EXPECT_EQ(bm.observations(), 5u);
  EXPECT_DOUBLE_EQ(bm.mean(), 0.0);
  EXPECT_DOUBLE_EQ(bm.ci_half_width(), 0.0);
}

// ---------------------------------------------------------------- student t

TEST(StudentT, KnownQuantiles) {
  // Classic table values.
  EXPECT_NEAR(student_t_quantile(1, 0.975), 12.706, 0.01);
  EXPECT_NEAR(student_t_quantile(4, 0.975), 2.776, 0.005);
  EXPECT_NEAR(student_t_quantile(10, 0.975), 2.228, 0.005);
  EXPECT_NEAR(student_t_quantile(30, 0.975), 2.042, 0.005);
  EXPECT_NEAR(student_t_quantile(4, 0.95), 2.132, 0.005);
}

TEST(StudentT, MedianIsZeroAndSymmetry) {
  EXPECT_DOUBLE_EQ(student_t_quantile(7, 0.5), 0.0);
  EXPECT_NEAR(student_t_quantile(7, 0.25), -student_t_quantile(7, 0.75), 1e-9);
}

TEST(StudentT, LargeDofApproachesNormal) {
  EXPECT_NEAR(student_t_quantile(10000, 0.975), 1.960, 0.005);
}

TEST(StudentT, CdfQuantileRoundTrip) {
  for (int dof : {1, 3, 9, 25}) {
    for (double p : {0.1, 0.3, 0.6, 0.9, 0.99}) {
      EXPECT_NEAR(student_t_cdf(dof, student_t_quantile(dof, p)), p, 1e-8);
    }
  }
}

TEST(IncompleteBeta, Endpoints) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.999);
  h.add(5.0);
  h.add(9.999);
  h.add(10.0);  // top edge joins the last bin
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total_count(), 2u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 10);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_EQ(h.total_count(), 10u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, ToStringShowsNonEmptyBins) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string text = h.to_string();
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Histogram, EmptyQuantileReturnsLowerEdge) {
  Histogram h(2.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(Histogram, SingleSampleQuantiles) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.2);
  // Every positive quantile lands in the one occupied bin's midpoint;
  // q = 0 is the lower edge by convention.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.5);
}

TEST(Histogram, QuantileAtBucketEdges) {
  // 4 equal bins, 1 sample each: cumulative counts hit the quantile targets
  // exactly at bin boundaries — the estimate must be the covering bin's
  // midpoint, with no off-by-one at the edge.
  Histogram h(0.0, 4.0, 4);
  for (double x : {0.5, 1.5, 2.5, 3.5}) h.add(x);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.5);   // target 1, reached by bin 0
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);    // target 2, reached by bin 1
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.5);
}

TEST(Histogram, QuantileWithOutOfRangeMass) {
  // Underflow mass counts toward low quantiles (clamped to lo); overflow
  // mass pushes high quantiles to hi.
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0, 2);  // clamped below
  h.add(0.25);
  h.add(9.0);      // clamped above
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);    // inside the underflow mass
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 0.25);  // the one in-range sample
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);    // overflow pins the top at hi
}

TEST(Histogram, TopEdgeJoinsLastBinNotOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);
  EXPECT_EQ(h.bin(3), 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

// ---------------------------------------------------------------- time weighted

TEST(TimeWeighted, PiecewiseConstantMean) {
  TimeWeighted tw;
  tw.update(0.0, 2.0);   // value 2 on [0, 10)
  tw.update(10.0, 6.0);  // value 6 on [10, 20)
  tw.flush(20.0);
  EXPECT_DOUBLE_EQ(tw.mean(), 4.0);
  EXPECT_DOUBLE_EQ(tw.observed(), 20.0);
}

TEST(TimeWeighted, WindowClipping) {
  TimeWeighted tw(/*window_start=*/5.0, /*window_end=*/15.0);
  tw.update(0.0, 2.0);
  tw.update(10.0, 6.0);
  tw.flush(20.0);
  // Clipped: value 2 on [5,10), value 6 on [10,15) -> mean 4.
  EXPECT_DOUBLE_EQ(tw.mean(), 4.0);
  EXPECT_DOUBLE_EQ(tw.observed(), 10.0);
}

TEST(TimeWeighted, NoObservationsIsZero) {
  TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.mean(), 0.0);
  EXPECT_DOUBLE_EQ(tw.observed(), 0.0);
}

TEST(TimeWeighted, RepeatedUpdatesAtSameTime) {
  TimeWeighted tw;
  tw.update(0.0, 1.0);
  tw.update(0.0, 5.0);  // zero-length segment contributes nothing
  tw.flush(10.0);
  EXPECT_DOUBLE_EQ(tw.mean(), 5.0);
}

// --- property tests -------------------------------------------------------

TEST(HistogramProperty, QuantilesMonotoneInQ) {
  Rng rng(31);
  for (int instance = 0; instance < 20; ++instance) {
    Histogram hist(0.0, 100.0, 1 + rng.uniform_int(40));
    const int samples = 1 + static_cast<int>(rng.uniform_int(500));
    for (int i = 0; i < samples; ++i) {
      // Include out-of-range mass so under/overflow paths are exercised.
      hist.add(rng.uniform(-20.0, 120.0));
    }
    double last = -1e300;
    for (double q = 0.0; q <= 1.0 + 1e-12; q += 0.01) {
      const double value = hist.quantile(std::min(q, 1.0));
      EXPECT_GE(value, last) << "q=" << q << " instance " << instance;
      last = value;
    }
  }
}

TEST(HistogramProperty, QuantilesInvariantUnderBucketPreservingPermutations) {
  // Quantiles are a function of the bucket counts alone, so (a) insertion
  // order and (b) the position of a sample *within* its bucket must not
  // matter.
  Rng rng(32);
  Histogram original(0.0, 50.0, 25);  // bin width 2
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(rng.uniform(0.0, 50.0));
  for (double sample : samples) original.add(sample);

  std::vector<double> scrambled = samples;
  rng.shuffle(scrambled);
  Histogram permuted(0.0, 50.0, 25);
  for (double sample : scrambled) {
    // Move the sample to a fresh position inside the same 2-wide bucket.
    const double bucket_lo = std::floor(sample / 2.0) * 2.0;
    permuted.add(std::min(bucket_lo + 2.0 * rng.uniform(), 49.999999));
  }

  ASSERT_EQ(original.total_count(), permuted.total_count());
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(original.quantile(q), permuted.quantile(q)) << "q=" << q;
  }
}

TEST(BatchMeansProperty, CiWidthShrinksWithRunLength) {
  // Same iid source, geometrically longer runs: the batch-means CI
  // half-width must shrink (up to Student-t luck, so require monotone
  // decrease across 16x steps, not adjacent pairs).
  Rng rng(33);
  std::vector<double> widths;
  for (std::uint64_t n : {2000ull, 32000ull, 512000ull}) {
    BatchMeans bm(/*batch_size=*/n / 20, /*warmup_observations=*/0);
    for (std::uint64_t i = 0; i < n; ++i) bm.add(rng.uniform(0.0, 1.0));
    ASSERT_GE(bm.batch_count(), 2u);
    widths.push_back(bm.ci_half_width());
  }
  EXPECT_LT(widths[1], widths[0]);
  EXPECT_LT(widths[2], widths[1]);
  // sqrt(n) scaling: 16x the data should cut the width by ~4; accept 2x.
  EXPECT_LT(widths[2], widths[0] / 2.0);
}

TEST(TimeWeightedProperty, AgreesWithHandIntegratedStepFunctions) {
  // Random step functions, integrated by hand over the clipped window.
  Rng rng(34);
  for (int instance = 0; instance < 50; ++instance) {
    const double window_start = rng.uniform(0.0, 20.0);
    const double window_end = window_start + rng.uniform(1.0, 50.0);
    TimeWeighted tw(window_start, window_end);

    double t = rng.uniform(0.0, 10.0);
    double value = rng.uniform(-5.0, 5.0);
    tw.update(t, value);
    double integral = 0.0;
    double observed = 0.0;
    for (int step = 0; step < 30; ++step) {
      const double next = t + rng.uniform(0.0, 5.0);
      const double lo = std::max(t, window_start);
      const double hi = std::min(next, window_end);
      if (hi > lo) {
        integral += value * (hi - lo);
        observed += hi - lo;
      }
      value = rng.uniform(-5.0, 5.0);
      tw.update(next, value);
      t = next;
    }
    tw.flush(t);
    EXPECT_NEAR(tw.observed(), observed, 1e-9) << "instance " << instance;
    if (observed > 0.0) {
      EXPECT_NEAR(tw.mean(), integral / observed, 1e-9)
          << "instance " << instance;
    }
  }
}

}  // namespace
}  // namespace vodsim
