// Observability layer tests: the trace recorder/ring, category filtering,
// the golden admission/migration event sequence for a pinned scenario, the
// exporters' schemas, probe sampling, and the VODSIM_TRACE/VODSIM_PROBE
// environment overrides.
//
// The golden-sequence test is deliberately brittle: the exact ordered list
// of admission and migration events for a fixed seed is part of the
// engine's determinism contract (like determinism_test, but at the event
// level rather than the aggregate level). If a change legitimately alters
// scheduling or admission order, regenerate the golden below from the
// failure message, which prints the full actual rendering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "vodsim/engine/vod_simulation.h"
#include "vodsim/obs/exporters.h"
#include "vodsim/obs/probes.h"
#include "vodsim/obs/trace.h"
#include "vodsim/util/csv.h"

namespace vodsim {
namespace {

// ---------------------------------------------------------------- recorder

TEST(TraceRecorder, RecordsInOrder) {
  TraceConfig config;
  config.enabled = true;
  config.capacity = 8;
  TraceRecorder trace(config);
  trace.record(1.0, TraceEventType::kArrival, kNoServer, 0, 5);
  trace.record(2.0, TraceEventType::kAdmit, 3, 0, 5, 1.0);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].type, TraceEventType::kArrival);
  EXPECT_EQ(trace[0].seq, 0u);
  EXPECT_EQ(trace[1].type, TraceEventType::kAdmit);
  EXPECT_EQ(trace[1].server, 3);
  EXPECT_EQ(trace[1].video, 5);
  EXPECT_DOUBLE_EQ(trace[1].a, 1.0);
  EXPECT_EQ(trace.emitted(), 2u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorder, RingWrapKeepsLatestAndCountsDropped) {
  TraceConfig config;
  config.enabled = true;
  config.capacity = 4;
  TraceRecorder trace(config);
  for (int i = 0; i < 10; ++i) {
    trace.record(static_cast<double>(i), TraceEventType::kArrival, kNoServer, i);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.emitted(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  // Oldest-first iteration yields the last four emissions; seq is gap-free,
  // so the first retained seq equals dropped().
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seq, 6u + i);
    EXPECT_EQ(trace[i].request, static_cast<RequestId>(6 + i));
  }
  const std::vector<TraceEvent> snap = trace.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().seq, 6u);
  EXPECT_EQ(snap.back().seq, 9u);
}

TEST(TraceRecorder, CategoryMaskFilters) {
  TraceConfig config;
  config.enabled = true;
  config.categories = kTraceAdmission | kTraceBuffer;
  TraceRecorder trace(config);
  EXPECT_TRUE(trace.wants(kTraceAdmission));
  EXPECT_TRUE(trace.wants(kTraceBuffer));
  EXPECT_FALSE(trace.wants(kTraceMigration));
  EXPECT_FALSE(trace.wants(kTraceSched));
}

TEST(TraceCategories, EveryTypeHasCategoryAndNames) {
  for (int i = 0; i <= static_cast<int>(TraceEventType::kResume); ++i) {
    const auto type = static_cast<TraceEventType>(i);
    const TraceCategory category = trace_event_category(type);
    EXPECT_NE(category & kTraceAllCategories, 0u);
    EXPECT_STRNE(to_string(type), "unknown");
    EXPECT_STRNE(to_string(category), "unknown");
    // Category names parse back to the same bit.
    EXPECT_EQ(parse_trace_categories(to_string(category)),
              static_cast<std::uint32_t>(category));
  }
}

TEST(TraceCategories, ParseSpecs) {
  EXPECT_EQ(parse_trace_categories("all"), kTraceAllCategories);
  EXPECT_EQ(parse_trace_categories("admission,migration"),
            kTraceAdmission | kTraceMigration);
  EXPECT_EQ(parse_trace_categories("0xff"), kTraceAllCategories);
  EXPECT_EQ(parse_trace_categories("6"), kTraceMigration | kTraceSched);
  EXPECT_THROW(parse_trace_categories("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_trace_categories("admission,bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------- scenario

/// Tiny saturating cluster: two 12 Mb/s servers (4 streams each), eight
/// short videos at 1.5 copies, double the sustainable load — admissions,
/// rejections and DRM activity all within a 300 s horizon.
SimulationConfig golden_scenario() {
  // Pin the environment: CI's paranoid job exports VODSIM_TRACE=1, which
  // would widen the category filter and change the recorded sequence.
  ::unsetenv("VODSIM_TRACE");
  ::unsetenv("VODSIM_TRACE_CAPACITY");
  ::unsetenv("VODSIM_PROBE");
  SimulationConfig config;
  config.system.name = "golden";
  config.system.num_servers = 2;
  config.system.server_bandwidth = 12.0;
  config.system.server_storage = gigabytes(10);
  config.system.video_min_duration = 60.0;
  config.system.video_max_duration = 120.0;
  config.system.num_videos = 8;
  config.system.avg_copies = 1.5;
  config.system.view_bandwidth = 3.0;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 9.0;
  config.admission.migration.enabled = true;
  config.zipf_theta = 0.271;
  config.load_factor = 2.0;
  config.duration = 300.0;
  config.warmup = 0.0;
  config.seed = 2026;
  config.trace.enabled = true;
  config.trace.categories = kTraceAdmission | kTraceMigration;
  return config;
}

std::string render(const TraceRecorder& trace) {
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    std::snprintf(line, sizeof(line), "%.3f %s s%d r%ld v%d a=%.6g b=%.6g\n",
                  e.time, to_string(e.type), e.server,
                  static_cast<long>(e.request), e.video, e.a, e.b);
    out += line;
  }
  return out;
}

// Regenerate by building obs_test and pasting the rendering the failure
// message prints (or see DESIGN.md §7).
constexpr const char* kGoldenAdmissionMigrationTrace = R"(1.536 arrival s-1 r0 v0 a=0 b=0
1.536 admit s0 r0 v0 a=0 b=0
4.383 arrival s-1 r1 v1 a=0 b=0
4.383 admit s0 r1 v1 a=0 b=0
8.723 arrival s-1 r2 v4 a=0 b=0
8.723 admit s1 r2 v4 a=0 b=0
8.858 arrival s-1 r3 v5 a=0 b=0
8.858 admit s0 r3 v5 a=0 b=0
15.426 arrival s-1 r4 v1 a=0 b=0
15.426 admit s0 r4 v1 a=0 b=0
16.416 arrival s-1 r5 v6 a=0 b=0
16.416 admit s1 r5 v6 a=0 b=0
22.725 arrival s-1 r6 v0 a=0 b=0
22.725 admit s1 r6 v0 a=0 b=0
25.745 arrival s-1 r7 v0 a=0 b=0
25.745 admit s1 r7 v0 a=0 b=0
26.026 arrival s-1 r8 v7 a=0 b=0
26.026 migration_search s-1 r-1 v7 a=4 b=-1
26.026 reject s-1 r8 v7 a=1 b=0
47.568 arrival s-1 r9 v7 a=0 b=0
47.568 migration_search s-1 r-1 v7 a=4 b=-1
47.568 reject s-1 r9 v7 a=1 b=0
47.615 arrival s-1 r10 v6 a=0 b=0
47.615 migration_search s-1 r-1 v6 a=5 b=-1
47.615 reject s-1 r10 v6 a=2 b=0
50.901 arrival s-1 r11 v1 a=0 b=0
50.901 migration_search s-1 r-1 v1 a=1 b=-1
50.901 reject s-1 r11 v1 a=1 b=0
65.871 arrival s-1 r12 v4 a=0 b=0
65.871 migration_search s-1 r-1 v4 a=5 b=-1
65.871 reject s-1 r12 v4 a=2 b=0
85.326 arrival s-1 r13 v2 a=0 b=0
85.326 admit s0 r13 v2 a=0 b=0
92.222 arrival s-1 r14 v0 a=0 b=0
92.222 admit s0 r14 v0 a=0 b=0
96.775 arrival s-1 r15 v3 a=0 b=0
96.775 admit s0 r15 v3 a=0 b=0
96.850 arrival s-1 r16 v2 a=0 b=0
96.850 migration_search s-1 r-1 v2 a=1 b=1
96.850 admit s0 r16 v2 a=1 b=0
96.850 migrate_begin s0 r14 v0 a=1 b=0
96.850 migrate_end s1 r14 v0 a=0 b=0
97.960 arrival s-1 r17 v7 a=0 b=0
97.960 migration_search s-1 r-1 v7 a=3 b=-1
97.960 reject s-1 r17 v7 a=1 b=0
98.304 arrival s-1 r18 v3 a=0 b=0
98.304 migration_search s-1 r-1 v3 a=4 b=-1
98.304 reject s-1 r18 v3 a=2 b=0
108.552 arrival s-1 r19 v0 a=0 b=0
108.552 admit s1 r19 v0 a=0 b=0
122.958 arrival s-1 r20 v1 a=0 b=0
122.958 admit s0 r20 v1 a=0 b=0
136.650 arrival s-1 r21 v6 a=0 b=0
136.650 admit s1 r21 v6 a=0 b=0
139.462 arrival s-1 r22 v7 a=0 b=0
139.462 admit s1 r22 v7 a=0 b=0
145.751 arrival s-1 r23 v0 a=0 b=0
145.751 migration_search s-1 r-1 v0 a=3 b=-1
145.751 reject s-1 r23 v0 a=2 b=0
145.796 arrival s-1 r24 v0 a=0 b=0
145.796 migration_search s-1 r-1 v0 a=3 b=-1
145.796 reject s-1 r24 v0 a=2 b=0
147.922 arrival s-1 r25 v0 a=0 b=0
147.922 migration_search s-1 r-1 v0 a=3 b=-1
147.922 reject s-1 r25 v0 a=2 b=0
148.769 arrival s-1 r26 v1 a=0 b=0
148.769 migration_search s-1 r-1 v1 a=1 b=-1
148.769 reject s-1 r26 v1 a=1 b=0
153.133 arrival s-1 r27 v0 a=0 b=0
153.133 migration_search s-1 r-1 v0 a=3 b=-1
153.133 reject s-1 r27 v0 a=2 b=0
153.186 arrival s-1 r28 v0 a=0 b=0
153.186 migration_search s-1 r-1 v0 a=3 b=-1
153.186 reject s-1 r28 v0 a=2 b=0
153.462 arrival s-1 r29 v3 a=0 b=0
153.462 migration_search s-1 r-1 v3 a=3 b=-1
153.462 reject s-1 r29 v3 a=2 b=0
156.179 arrival s-1 r30 v7 a=0 b=0
156.179 migration_search s-1 r-1 v7 a=2 b=-1
156.179 reject s-1 r30 v7 a=1 b=0
168.810 arrival s-1 r31 v3 a=0 b=0
168.810 admit s0 r31 v3 a=0 b=0
176.406 arrival s-1 r32 v1 a=0 b=0
176.406 admit s0 r32 v1 a=0 b=0
184.340 arrival s-1 r33 v1 a=0 b=0
184.340 admit s0 r33 v1 a=0 b=0
186.696 arrival s-1 r34 v0 a=0 b=0
186.696 admit s1 r34 v0 a=0 b=0
189.601 arrival s-1 r35 v2 a=0 b=0
189.601 migration_search s-1 r-1 v2 a=1 b=1
189.601 admit s0 r35 v2 a=1 b=0
189.601 migrate_begin s0 r31 v3 a=1 b=0
189.601 migrate_end s1 r31 v3 a=0 b=0
203.570 arrival s-1 r36 v3 a=0 b=0
203.570 admit s1 r36 v3 a=0 b=0
213.754 arrival s-1 r37 v1 a=0 b=0
213.754 migration_search s-1 r-1 v1 a=0 b=-1
213.754 reject s-1 r37 v1 a=1 b=0
214.069 arrival s-1 r38 v0 a=0 b=0
214.069 admit s1 r38 v0 a=0 b=0
215.696 arrival s-1 r39 v6 a=0 b=0
215.696 migration_search s-1 r-1 v6 a=3 b=-1
215.696 reject s-1 r39 v6 a=2 b=0
222.578 arrival s-1 r40 v2 a=0 b=0
222.578 admit s0 r40 v2 a=0 b=0
223.150 arrival s-1 r41 v3 a=0 b=0
223.150 migration_search s-1 r-1 v3 a=3 b=-1
223.150 reject s-1 r41 v3 a=2 b=0
226.650 arrival s-1 r42 v2 a=0 b=0
226.650 migration_search s-1 r-1 v2 a=0 b=-1
226.650 reject s-1 r42 v2 a=1 b=0
243.860 arrival s-1 r43 v7 a=0 b=0
243.860 admit s1 r43 v7 a=0 b=0
244.146 arrival s-1 r44 v2 a=0 b=0
244.146 migration_search s-1 r-1 v2 a=0 b=-1
244.146 reject s-1 r44 v2 a=1 b=0
244.765 arrival s-1 r45 v4 a=0 b=0
244.765 migration_search s-1 r-1 v4 a=3 b=-1
244.765 reject s-1 r45 v4 a=2 b=0
254.356 arrival s-1 r46 v3 a=0 b=0
254.356 migration_search s-1 r-1 v3 a=3 b=-1
254.356 reject s-1 r46 v3 a=2 b=0
266.761 arrival s-1 r47 v1 a=0 b=0
266.761 migration_search s-1 r-1 v1 a=0 b=-1
266.761 reject s-1 r47 v1 a=1 b=0
267.765 arrival s-1 r48 v0 a=0 b=0
267.765 admit s1 r48 v0 a=0 b=0
271.919 arrival s-1 r49 v7 a=0 b=0
271.919 admit s1 r49 v7 a=0 b=0
288.211 arrival s-1 r50 v0 a=0 b=0
288.211 admit s0 r50 v0 a=0 b=0
288.315 arrival s-1 r51 v3 a=0 b=0
288.315 admit s0 r51 v3 a=0 b=0
299.073 arrival s-1 r52 v3 a=0 b=0
299.073 admit s0 r52 v3 a=0 b=0
)";

TEST(GoldenTrace, AdmissionMigrationSequenceMatchesGolden) {
  VodSimulation simulation(golden_scenario());
  simulation.run();
  ASSERT_NE(simulation.trace(), nullptr);
  const std::string rendered = render(*simulation.trace());
  EXPECT_EQ(simulation.trace()->dropped(), 0u);
  if (rendered != kGoldenAdmissionMigrationTrace) {
    ADD_FAILURE() << "golden trace mismatch; actual sequence:\n" << rendered;
  }
}

TEST(GoldenTrace, SequenceIsWellFormed) {
  VodSimulation simulation(golden_scenario());
  simulation.run();
  const TraceRecorder& trace = *simulation.trace();
  ASSERT_GT(trace.size(), 0u);

  bool saw_admit = false;
  bool saw_reject = false;
  bool saw_nonempty_search = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    // Monotone time and gap-free seq.
    if (i > 0) {
      EXPECT_GE(e.time, trace[i - 1].time);
      EXPECT_EQ(e.seq, trace[i - 1].seq + 1);
    }
    // Category filter respected.
    const TraceCategory category = trace_event_category(e.type);
    EXPECT_NE(category & (kTraceAdmission | kTraceMigration), 0u)
        << to_string(e.type);
    switch (e.type) {
      case TraceEventType::kAdmit:
        saw_admit = true;
        EXPECT_NE(e.server, kNoServer);
        break;
      case TraceEventType::kReject:
        saw_reject = true;
        break;
      case TraceEventType::kMigrationSearch:
        // A search may explore 0 nodes (every victim's video has no other
        // holder), but never a negative count.
        EXPECT_GE(e.a, 0.0);
        if (e.a > 0.0) saw_nonempty_search = true;
        break;
      case TraceEventType::kMigrateBegin: {
        // Every begin pairs with an end for the same request on the target
        // server named by the begin's payload.
        bool paired = false;
        for (std::size_t j = i + 1; j < trace.size() && !paired; ++j) {
          const TraceEvent& other = trace[j];
          paired = other.type == TraceEventType::kMigrateEnd &&
                   other.request == e.request &&
                   other.server == static_cast<ServerId>(e.a);
        }
        EXPECT_TRUE(paired) << "unpaired migrate_begin for request "
                            << e.request;
        break;
      }
      default:
        break;
    }
  }
  // The scenario actually exercises all three admission outcomes — without
  // this the checks above are vacuous.
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_reject);
  EXPECT_TRUE(saw_nonempty_search);
}

// ---------------------------------------------------------------- exporters

/// Pulls the numeric value following `"key":` out of a JSON line (enough
/// for schema checks without a JSON parser).
double json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

TEST(JsonlExport, SchemaAndMonotoneTimestamps) {
  VodSimulation simulation(golden_scenario());
  simulation.run();
  std::ostringstream out;
  write_trace_jsonl(out, *simulation.trace());

  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"schema\":\"vodsim-trace-v1\""), std::string::npos);
  const auto declared = static_cast<std::size_t>(json_field(line, "events"));
  EXPECT_EQ(declared, simulation.trace()->size());
  EXPECT_DOUBLE_EQ(json_field(line, "dropped"), 0.0);

  std::size_t events = 0;
  double last_t = -1.0;
  double last_seq = -1.0;
  while (std::getline(in, line)) {
    ++events;
    for (const char* key : {"seq", "t", "server", "request", "video", "a", "b"}) {
      EXPECT_NE(line.find("\"" + std::string(key) + "\":"), std::string::npos)
          << "missing key " << key;
    }
    EXPECT_NE(line.find("\"type\":\""), std::string::npos);
    EXPECT_NE(line.find("\"cat\":\""), std::string::npos);
    const double t = json_field(line, "t");
    const double seq = json_field(line, "seq");
    EXPECT_GE(t, last_t);
    EXPECT_GT(seq, last_seq);
    last_t = t;
    last_seq = seq;
  }
  EXPECT_EQ(events, declared);
}

TEST(ChromeExport, WellFormedAndSpansPair) {
  SimulationConfig config = golden_scenario();
  config.probe.enabled = true;
  config.probe.period = 60.0;
  VodSimulation simulation(config);
  simulation.run();

  std::ostringstream out;
  write_chrome_trace(out, *simulation.trace(), simulation.probes(),
                     simulation.servers().size());
  const std::string text = out.str();

  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  // No string payloads contain braces, so brace balance is a real check.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
  // JSON has no non-finite literals; json_number degrades those to null.
  EXPECT_EQ(text.find(":nan"), std::string::npos);
  EXPECT_EQ(text.find(":inf"), std::string::npos);

  // Async spans pair up; counter samples and thread metadata are present.
  auto occurrences = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(occurrences("\"ph\":\"b\""), occurrences("\"ph\":\"e\""));
  EXPECT_GT(occurrences("\"ph\":\"i\""), 0u);
  EXPECT_GT(occurrences("\"ph\":\"C\""), 0u);
  EXPECT_EQ(occurrences("\"ph\":\"M\""),
            simulation.servers().size() + 2);  // process + per-server + cluster
}

// ---------------------------------------------------------------- probes

TEST(Probes, GridTimestampsAndRowShape) {
  SimulationConfig config = golden_scenario();
  config.trace.enabled = false;
  config.probe.enabled = true;
  config.probe.period = 30.0;
  VodSimulation simulation(config);
  simulation.run();

  const ProbeSet& probes = *simulation.probes();
  const std::size_t servers = simulation.servers().size();
  // Grid: 30, 60, ..., 300 — ten instants, (servers + 1) rows each; the
  // tail instants are filled by finalize() even if no event lands there.
  EXPECT_EQ(probes.samples(), 10u);
  ASSERT_EQ(probes.rows().size(), probes.samples() * (servers + 1));

  for (std::size_t i = 0; i < probes.rows().size(); ++i) {
    const ProbeRow& row = probes.rows()[i];
    const auto block = i / (servers + 1);
    const auto offset = i % (servers + 1);
    EXPECT_DOUBLE_EQ(row.time, 30.0 * static_cast<double>(block + 1));
    if (offset == servers) {
      EXPECT_EQ(row.server, kNoServer);  // aggregate row closes each block
    } else {
      EXPECT_EQ(row.server, static_cast<ServerId>(offset));
      EXPECT_LE(row.committed_mbps, simulation.servers()[offset].bandwidth());
    }
    EXPECT_GE(row.active_streams, 0.0);
    EXPECT_GE(row.mean_buffer_fill, 0.0);
    EXPECT_LE(row.mean_buffer_fill, 1.0);
  }

  // The saturating scenario commits real bandwidth; summaries reflect it.
  EXPECT_GT(probes.committed(0).mean() + probes.committed(1).mean(), 0.0);
  EXPECT_GT(probes.fill_histogram().total_count(), 0u);
}

TEST(Probes, CsvRoundTrips) {
  SimulationConfig config = golden_scenario();
  config.probe.enabled = true;
  config.probe.period = 60.0;
  VodSimulation simulation(config);
  simulation.run();

  std::ostringstream out;
  write_probe_csv(out, *simulation.probes());

  std::istringstream in(out.str());
  std::vector<std::string> fields;
  ASSERT_TRUE(read_csv_record(in, fields));
  EXPECT_EQ(fields, (std::vector<std::string>{
                        "time", "server", "committed_mbps", "reserved_mbps",
                        "active_streams", "mean_buffer_fill", "pending_events",
                        "capacity_factor", "retry_queue", "reachable"}));
  std::size_t rows = 0;
  double last_time = 0.0;
  while (read_csv_record(in, fields)) {
    ASSERT_EQ(fields.size(), 10u);
    const double time = std::stod(fields[0]);
    EXPECT_GE(time, last_time);
    last_time = time;
    for (const std::string& field : fields) {
      EXPECT_NO_THROW((void)std::stod(field));
    }
    ++rows;
  }
  EXPECT_EQ(rows, simulation.probes()->rows().size());
}

// ---------------------------------------------------------------- env knobs

/// Tiny config whose construction is cheap (env tests never run the sim).
/// Build it *before* setenv: golden_scenario() scrubs the trace env vars.
SimulationConfig env_config() {
  SimulationConfig config = golden_scenario();
  config.trace.enabled = false;
  config.probe.enabled = false;
  return config;
}

TEST(EnvOverride, TraceCategoryListForcesTracing) {
  const SimulationConfig config = env_config();
  ::setenv("VODSIM_TRACE", "admission,buffer", 1);
  VodSimulation simulation(config);
  ::unsetenv("VODSIM_TRACE");
  ASSERT_NE(simulation.trace(), nullptr);
  EXPECT_EQ(simulation.trace()->categories(), kTraceAdmission | kTraceBuffer);
}

TEST(EnvOverride, NumericTraceEnablesAllCategories) {
  // A bare number is a boolean switch, not a bitmask — VODSIM_TRACE=1 must
  // mean "trace everything", not "admission only".
  const SimulationConfig config = env_config();
  ::setenv("VODSIM_TRACE", "1", 1);
  VodSimulation simulation(config);
  ::unsetenv("VODSIM_TRACE");
  ASSERT_NE(simulation.trace(), nullptr);
  EXPECT_EQ(simulation.trace()->categories(), kTraceAllCategories);
}

TEST(EnvOverride, ZeroAndUnsetLeaveTracingOff) {
  const SimulationConfig config = env_config();
  ::setenv("VODSIM_TRACE", "0", 1);
  VodSimulation zero(config);
  ::unsetenv("VODSIM_TRACE");
  EXPECT_EQ(zero.trace(), nullptr);
  VodSimulation unset(config);
  EXPECT_EQ(unset.trace(), nullptr);
  EXPECT_EQ(unset.probes(), nullptr);
}

TEST(EnvOverride, ProbePeriodForcesProbing) {
  const SimulationConfig config = env_config();
  ::setenv("VODSIM_PROBE", "15", 1);
  VodSimulation simulation(config);
  ::unsetenv("VODSIM_PROBE");
  ASSERT_NE(simulation.probes(), nullptr);
  EXPECT_DOUBLE_EQ(simulation.probes()->period(), 15.0);
}

TEST(EnvOverride, TraceCapacityOverride) {
  const SimulationConfig config = env_config();
  ::setenv("VODSIM_TRACE", "1", 1);
  ::setenv("VODSIM_TRACE_CAPACITY", "128", 1);
  VodSimulation simulation(config);
  ::unsetenv("VODSIM_TRACE");
  ::unsetenv("VODSIM_TRACE_CAPACITY");
  ASSERT_NE(simulation.trace(), nullptr);
  EXPECT_EQ(simulation.trace()->capacity(), 128u);
}

}  // namespace
}  // namespace vodsim
