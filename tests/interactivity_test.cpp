// Tests for the client interactivity (pause/resume) extension: request-level
// semantics and end-to-end engine behavior.

#include <gtest/gtest.h>

#include "vodsim/engine/vod_simulation.h"

namespace vodsim {
namespace {

Video make_video(Seconds duration = 600.0) {
  Video video;
  video.id = 0;
  video.duration = duration;
  video.view_bandwidth = 3.0;
  return video;
}

// ------------------------------------------------------- request semantics

TEST(Interactivity, PauseStopsConsumption) {
  ClientProfile client{300.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 9.0);
  request.advance(10.0);  // buffer (9-3)*10 = 60
  EXPECT_DOUBLE_EQ(request.buffer_level(), 60.0);

  request.pause_viewing(10.0);
  request.advance(20.0);  // inflow 90, no drain
  EXPECT_DOUBLE_EQ(request.buffer_level(), 150.0);
  EXPECT_EQ(request.pause_count(), 1);
}

TEST(Interactivity, ResumeShiftsDeadline) {
  ClientProfile client{300.0, 30.0};
  Request request(1, make_video(600.0), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 3.0);
  EXPECT_DOUBLE_EQ(request.playback_end(), 600.0);
  request.advance(100.0);
  request.pause_viewing(100.0);
  request.advance(130.0);
  request.resume_viewing(130.0);
  EXPECT_DOUBLE_EQ(request.playback_end(), 630.0);
}

TEST(Interactivity, DrainRateReflectsState) {
  ClientProfile client{300.0, 30.0};
  Request request(1, make_video(600.0), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 3.0);
  EXPECT_DOUBLE_EQ(request.drain_rate(10.0), 3.0);
  request.advance(10.0);
  request.pause_viewing(10.0);
  EXPECT_DOUBLE_EQ(request.drain_rate(10.0), 0.0);
  request.advance(20.0);
  request.resume_viewing(20.0);
  EXPECT_DOUBLE_EQ(request.drain_rate(20.0), 3.0);
}

TEST(Interactivity, PausedFullBufferAbsorbsNothing) {
  ClientProfile client{60.0, 30.0};
  Request request(1, make_video(), 0.0, client);
  request.begin_streaming(0.0, 0);
  request.set_allocation(0.0, 9.0);
  request.advance(10.0);  // buffer hits 60 = capacity
  EXPECT_TRUE(request.buffer_full());
  EXPECT_DOUBLE_EQ(request.minimum_rate(), 3.0);  // playing: drains at 3
  request.set_allocation(10.0, 3.0);
  request.pause_viewing(10.0);
  EXPECT_DOUBLE_EQ(request.minimum_rate(), 0.0);  // paused + full: nothing
  request.advance(15.0);
  request.resume_viewing(15.0);
  EXPECT_DOUBLE_EQ(request.minimum_rate(), 3.0);
}

// ------------------------------------------------------- end to end

SimulationConfig interactive_config(std::uint64_t seed) {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.zipf_theta = 0.271;
  config.duration = hours(20);
  config.warmup = hours(2);
  config.seed = seed;
  config.client.staging_fraction = 0.2;
  config.client.receive_bandwidth = 30.0;
  config.interactivity.enabled = true;
  config.interactivity.pauses_per_hour = 4.0;
  config.interactivity.mean_pause_duration = 180.0;
  return config;
}

TEST(Interactivity, EngineRunsWithPausesAndStaysContinuous) {
  VodSimulation simulation(interactive_config(51));
  const Metrics& metrics = simulation.run();
  EXPECT_GT(simulation.pauses_started(), 100u);
  // Pausing never starves playback: consumption stops while paused, so the
  // continuity invariant must still hold.
  EXPECT_EQ(simulation.continuity_violations(), 0u);
  EXPECT_LE(metrics.utilization(), 1.0 + 1e-9);
  // Buffers still within bounds.
  for (const Request& request : simulation.requests()) {
    EXPECT_GE(request.buffer_level(), 0.0);
    EXPECT_LE(request.buffer_level(),
              request.buffer_capacity() + StagingBuffer::kLevelTolerance);
  }
}

TEST(Interactivity, PausesExtendResidencyAndCostUtilization) {
  // Paused viewers hold their admission slot longer (deadline shifts), so
  // at 100% offered load the system can serve slightly less; it must not
  // gain from pauses.
  SimulationConfig with = interactive_config(52);
  SimulationConfig without = with;
  without.interactivity.enabled = false;
  VodSimulation sim_with(with);
  VodSimulation sim_without(without);
  const double u_with = sim_with.run().utilization();
  const double u_without = sim_without.run().utilization();
  EXPECT_LT(u_with, u_without + 0.02);
  EXPECT_EQ(sim_with.continuity_violations(), 0u);
}

TEST(Interactivity, DisabledMeansNoPauses) {
  SimulationConfig config = interactive_config(53);
  config.interactivity.enabled = false;
  VodSimulation simulation(config);
  simulation.run();
  EXPECT_EQ(simulation.pauses_started(), 0u);
  for (const Request& request : simulation.requests()) {
    EXPECT_EQ(request.pause_count(), 0);
  }
}

TEST(Interactivity, WorksTogetherWithMigration) {
  SimulationConfig config = interactive_config(54);
  config.admission.migration.enabled = true;
  config.admission.migration.max_hops_per_request = 1;
  VodSimulation simulation(config);
  const Metrics& metrics = simulation.run();
  EXPECT_GT(metrics.migration_steps(), 0u);
  EXPECT_GT(simulation.pauses_started(), 0u);
  EXPECT_EQ(simulation.continuity_violations(), 0u);
}

TEST(Interactivity, DeterministicUnderSeed) {
  VodSimulation a(interactive_config(55));
  VodSimulation b(interactive_config(55));
  a.run();
  b.run();
  EXPECT_DOUBLE_EQ(a.metrics().utilization(), b.metrics().utilization());
  EXPECT_EQ(a.pauses_started(), b.pauses_started());
}

}  // namespace
}  // namespace vodsim
