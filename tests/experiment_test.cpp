// Tests for the experiment runner: trial aggregation, seed pairing,
// parallel sweeps.

#include <gtest/gtest.h>

#include "vodsim/engine/experiment.h"

namespace vodsim {
namespace {

SimulationConfig tiny_config() {
  SimulationConfig config;
  config.system = SystemConfig::small_system();
  config.duration = hours(10);
  config.warmup = hours(1);
  return config;
}

TEST(Experiment, DeriveSeedDeterministicAndDistinct) {
  const auto a0 = ExperimentRunner::derive_seed(42, 0);
  const auto a1 = ExperimentRunner::derive_seed(42, 1);
  const auto b0 = ExperimentRunner::derive_seed(43, 0);
  EXPECT_EQ(a0, ExperimentRunner::derive_seed(42, 0));
  EXPECT_NE(a0, a1);
  EXPECT_NE(a0, b0);
}

TEST(Experiment, RunPointAggregatesTrials) {
  ExperimentRunner runner(2);
  const ExperimentPoint point = runner.run_point(tiny_config(), 3, 7);
  EXPECT_EQ(point.utilization.count(), 3u);
  EXPECT_EQ(point.trials.size(), 3u);
  EXPECT_GT(point.utilization.mean(), 0.5);
  EXPECT_LE(point.utilization.max(), 1.0 + 1e-9);
  for (const TrialResult& trial : point.trials) {
    EXPECT_EQ(trial.continuity_violations, 0u);
    EXPECT_EQ(trial.accepts + trial.rejects, trial.arrivals);
  }
}

TEST(Experiment, SameMasterSeedReproduces) {
  ExperimentRunner runner(2);
  const ExperimentPoint a = runner.run_point(tiny_config(), 2, 11);
  const ExperimentPoint b = runner.run_point(tiny_config(), 2, 11);
  EXPECT_DOUBLE_EQ(a.utilization.mean(), b.utilization.mean());
  EXPECT_DOUBLE_EQ(a.rejection_ratio.mean(), b.rejection_ratio.mean());
}

TEST(Experiment, SweepPairsTrialsAcrossConfigs) {
  // Two identical configs in one sweep must produce identical trial
  // results — the pairing guarantee that makes policy contrasts sharp.
  ExperimentRunner runner(2);
  const auto config = tiny_config();
  const auto points = runner.run_sweep({config, config}, 2, 13);
  ASSERT_EQ(points.size(), 2u);
  ASSERT_EQ(points[0].trials.size(), 2u);
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_DOUBLE_EQ(points[0].trials[t].utilization,
                     points[1].trials[t].utilization);
    EXPECT_EQ(points[0].trials[t].arrivals, points[1].trials[t].arrivals);
  }
}

TEST(Experiment, SweepDistinguishesConfigs) {
  ExperimentRunner runner(2);
  auto with_staging = tiny_config();
  with_staging.client.staging_fraction = 0.2;
  with_staging.client.receive_bandwidth = 30.0;
  const auto points = runner.run_sweep({tiny_config(), with_staging}, 2, 17);
  EXPECT_NE(points[0].utilization.mean(), points[1].utilization.mean());
}

TEST(Experiment, CiShrinksWithMoreTrials) {
  ExperimentRunner runner(2);
  const ExperimentPoint few = runner.run_point(tiny_config(), 3, 19);
  const ExperimentPoint many = runner.run_point(tiny_config(), 8, 19);
  // Not guaranteed pointwise, but with 19-seeded trials this holds and
  // guards the CI computation wiring.
  EXPECT_LT(many.utilization.ci_half_width(),
            few.utilization.ci_half_width() * 2.0);
}

}  // namespace
}  // namespace vodsim
