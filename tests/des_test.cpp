// Tests for the discrete-event kernel: ordering, cancellation, reentrancy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "vodsim/des/event_queue.h"
#include "vodsim/des/simulator.h"

namespace vodsim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(3.0, [&](Seconds) { fired.push_back(3); });
  queue.schedule(1.0, [&](Seconds) { fired.push_back(1); });
  queue.schedule(2.0, [&](Seconds) { fired.push_back(2); });
  while (!queue.empty()) {
    auto [time, fn] = queue.pop();
    fn(time);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&fired, i](Seconds) { fired.push_back(i); });
  }
  while (!queue.empty()) queue.pop().second(5.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.schedule(1.0, [&](Seconds) { fired = true; });
  queue.schedule(2.0, [](Seconds) {});
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 1u);
  while (!queue.empty()) queue.pop().second(0.0);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelInvalidIsNoop) {
  EventQueue queue;
  queue.cancel(kInvalidEventId);
  queue.cancel(9999);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, [](Seconds) {});
  queue.cancel(id);
  queue.cancel(id);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PeekSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.schedule(1.0, [](Seconds) {});
  queue.schedule(2.0, [](Seconds) {});
  queue.cancel(early);
  EXPECT_DOUBLE_EQ(queue.peek_time(), 2.0);
}

TEST(EventQueue, ManyScheduleCancelCycles) {
  EventQueue queue;
  int fired = 0;
  for (int round = 0; round < 1000; ++round) {
    const EventId keep =
        queue.schedule(static_cast<double>(round), [&](Seconds) { ++fired; });
    const EventId drop = queue.schedule(static_cast<double>(round) + 0.5,
                                        [&](Seconds) { FAIL() << "cancelled"; });
    queue.cancel(drop);
    (void)keep;
  }
  while (!queue.empty()) queue.pop().second(0.0);
  EXPECT_EQ(fired, 1000);
}

TEST(EventQueue, CancelChurnRemovesEntriesEagerlyAndPreservesOrdering) {
  // cancel() removes its heap entry in place (sift-out through the position
  // index), so dead entries never accumulate. The removals must not disturb
  // firing order — neither across times nor the schedule-order tie-break at
  // equal times.
  EventQueue queue;
  std::vector<int> fired;
  std::vector<EventId> doomed;
  // Interleave survivors with events that will all be cancelled. Half the
  // survivors share one timestamp to exercise the equal-time tie-break
  // across the removal churn.
  for (int i = 0; i < 4000; ++i) {
    const Seconds time = (i % 2 == 0) ? 500.0 : static_cast<double>(i);
    queue.schedule(time, [&fired, i](Seconds) { fired.push_back(i); });
    doomed.push_back(
        queue.schedule(static_cast<double>(i) + 0.25, [](Seconds) {}));
    doomed.push_back(
        queue.schedule(static_cast<double>(i) + 0.75, [](Seconds) {}));
  }
  EXPECT_EQ(queue.heap_entries(), 12000u);
  for (const EventId id : doomed) queue.cancel(id);
  // Eager removal: the heap holds exactly the live events, immediately.
  EXPECT_EQ(queue.heap_entries(), 4000u);
  queue.schedule(1e9, [](Seconds) {});
  EXPECT_EQ(queue.heap_entries(), queue.size());
  EXPECT_EQ(queue.size(), 4001u);

  std::vector<int> expected;
  Seconds last = -1.0;
  while (!queue.empty()) {
    auto [time, fn] = queue.pop();
    EXPECT_GE(time, last);
    last = time;
    fn(time);
  }
  // Reconstruct the required order: ascending time, schedule order at ties.
  std::vector<std::pair<Seconds, int>> keyed;
  for (int i = 0; i < 4000; ++i) {
    keyed.emplace_back((i % 2 == 0) ? 500.0 : static_cast<double>(i), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [time, index] : keyed) expected.push_back(index);
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, RescheduleMovesEventBothDirections) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(1.0, [&](Seconds) { fired.push_back(1); });
  const EventId mid = queue.schedule(2.0, [&](Seconds) { fired.push_back(2); });
  queue.schedule(3.0, [&](Seconds) { fired.push_back(3); });

  EXPECT_TRUE(queue.reschedule(mid, 0.5));  // earlier: sift up
  while (!queue.empty()) queue.pop().second(0.0);
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 3}));

  fired.clear();
  queue.schedule(1.0, [&](Seconds) { fired.push_back(1); });
  const EventId front =
      queue.schedule(0.5, [&](Seconds) { fired.push_back(2); });
  queue.schedule(3.0, [&](Seconds) { fired.push_back(3); });
  EXPECT_TRUE(queue.reschedule(front, 2.0));  // later: sift down
  while (!queue.empty()) queue.pop().second(0.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RescheduleKeepsHandleValidAndHeapFlat) {
  // The whole point of retiming: no dead entry left in the heap, no new
  // slot, and the original handle keeps working across many retimes.
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.schedule(1.0, [&](Seconds) { fired = true; });
  const std::size_t entries = queue.heap_entries();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(queue.reschedule(id, 1.0 + static_cast<double>(i)));
  }
  EXPECT_EQ(queue.heap_entries(), entries);  // zero churn
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue.peek_time(), 100.0);
  queue.cancel(id);  // handle still owns the slot
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, RescheduleConsumesSeqSoEqualTimeTiesMatchCancelPlusSchedule) {
  // Determinism contract: a retimed event must tie with equal-time events
  // exactly as a cancel+fresh-schedule would — i.e. it loses the tie-break
  // against everything scheduled before the retime, despite its original
  // seq being older.
  EventQueue queue;
  std::vector<int> fired;
  const EventId moved =
      queue.schedule(1.0, [&](Seconds) { fired.push_back(1); });
  queue.schedule(5.0, [&](Seconds) { fired.push_back(2); });
  EXPECT_TRUE(queue.reschedule(moved, 5.0));
  while (!queue.empty()) queue.pop().second(5.0);
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
  // And the seq counter advanced, mirroring the replaced schedule call.
  EXPECT_EQ(queue.scheduled_count(), 3u);
}

TEST(EventQueue, RescheduleDeadOrStaleIdReturnsFalse) {
  EventQueue queue;
  EXPECT_FALSE(queue.reschedule(kInvalidEventId, 1.0));
  EXPECT_FALSE(queue.reschedule(9999, 1.0));

  const EventId cancelled = queue.schedule(1.0, [](Seconds) {});
  queue.cancel(cancelled);
  EXPECT_FALSE(queue.reschedule(cancelled, 2.0));

  const EventId fired_id = queue.schedule(1.0, [](Seconds) {});
  queue.pop().second(1.0);
  EXPECT_FALSE(queue.reschedule(fired_id, 2.0));

  // Slot recycled under a stale handle: the retime must target nothing.
  bool survivor_moved_early = false;
  const EventId recycled = queue.schedule(7.0, [&](Seconds time) {
    survivor_moved_early = time < 7.0;
  });
  (void)recycled;
  EXPECT_FALSE(queue.reschedule(fired_id, 0.0));  // may alias the same slot
  auto [time, fn] = queue.pop();
  fn(time);
  EXPECT_DOUBLE_EQ(time, 7.0);
  EXPECT_FALSE(survivor_moved_early);
}

TEST(EventQueue, RescheduleAfterCancelChurnUsesMaintainedPositions) {
  // Every eager cancel moves an unrelated entry into the freed hole and
  // sifts it, rewriting position indices throughout the heap. A retime
  // issued afterwards must land on the entry's *current* position, not
  // where it sat before the churn.
  EventQueue queue;
  std::vector<int> fired;
  std::vector<EventId> doomed;
  std::vector<EventId> movers;
  for (int i = 0; i < 2000; ++i) {
    movers.push_back(queue.schedule(1000.0 + static_cast<double>(i),
                                    [&fired, i](Seconds) { fired.push_back(i); }));
    doomed.push_back(
        queue.schedule(static_cast<double>(i) + 0.25, [](Seconds) {}));
    doomed.push_back(
        queue.schedule(static_cast<double>(i) + 0.75, [](Seconds) {}));
  }
  for (const EventId id : doomed) queue.cancel(id);
  queue.schedule(1e9, [](Seconds) {});
  ASSERT_EQ(queue.size(), 2001u);
  // Retime every survivor into reversed order.
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(queue.reschedule(movers[static_cast<std::size_t>(i)],
                                 3000.0 - static_cast<double>(i)));
  }
  while (!queue.empty()) queue.pop().second(0.0);
  ASSERT_EQ(fired.size(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], 1999 - i);
  }
}

TEST(EventQueue, MixedRescheduleCancelChurnMatchesReferenceOrder) {
  // Deterministic pseudo-random churn of schedule/cancel/reschedule against
  // a naive reference model of the contract: live events fire in ascending
  // (time, seq) where reschedule assigns a fresh seq.
  EventQueue queue;
  struct Ref {
    Seconds time;
    std::uint64_t seq;
    int tag;
  };
  std::vector<EventId> ids;
  std::vector<Ref> ref;       // parallel to ids; seq 0 = dead
  std::vector<int> fired;
  std::uint64_t seq = 0;
  std::uint64_t rng = 12345;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int op = 0; op < 3000; ++op) {
    const std::uint64_t roll = next() % 100;
    if (roll < 50 || ids.empty()) {
      const Seconds time = static_cast<double>(next() % 1000);
      const int tag = op;
      ids.push_back(queue.schedule(time, [&fired, tag](Seconds) {
        fired.push_back(tag);
      }));
      ref.push_back({time, ++seq, tag});
    } else if (roll < 80) {
      const std::size_t pick = next() % ids.size();
      const Seconds time = static_cast<double>(next() % 1000);
      const bool ok = queue.reschedule(ids[pick], time);
      EXPECT_EQ(ok, ref[pick].seq != 0);
      if (ok) {
        ref[pick].time = time;
        ref[pick].seq = ++seq;
      }
    } else {
      const std::size_t pick = next() % ids.size();
      queue.cancel(ids[pick]);
      ref[pick].seq = 0;
    }
  }
  std::vector<Ref> live;
  for (const Ref& r : ref) {
    if (r.seq != 0) live.push_back(r);
  }
  std::sort(live.begin(), live.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  ASSERT_EQ(queue.size(), live.size());
  while (!queue.empty()) queue.pop().second(0.0);
  ASSERT_EQ(fired.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(fired[i], live[i].tag);
  }
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  // After an event fires (or is cancelled), its slot is recycled with a
  // bumped generation. An id retained from the old occupant must not be
  // able to kill the slot's new event.
  EventQueue queue;
  const EventId stale = queue.schedule(1.0, [](Seconds) {});
  queue.pop().second(1.0);  // fires; slot 0 freed

  bool fired = false;
  const EventId fresh = queue.schedule(2.0, [&](Seconds) { fired = true; });
  // Slot is reused, so the ids alias the same slot but differ by generation.
  EXPECT_NE(stale, fresh);
  queue.cancel(stale);  // must be a no-op
  EXPECT_EQ(queue.size(), 1u);
  queue.pop().second(2.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelledIdStaysStaleAfterSlotReuse) {
  EventQueue queue;
  const EventId first = queue.schedule(1.0, [](Seconds) {});
  queue.cancel(first);
  bool fired = false;
  queue.schedule(2.0, [&](Seconds) { fired = true; });
  queue.cancel(first);  // double cancel aimed at a recycled slot: no-op
  EXPECT_EQ(queue.size(), 1u);
  queue.pop().second(2.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ScheduledCountIsMonotone) {
  EventQueue queue;
  std::uint64_t last = queue.scheduled_count();
  EXPECT_EQ(last, 0u);
  for (int i = 0; i < 3000; ++i) {
    const EventId id = queue.schedule(static_cast<double>(i % 7), [](Seconds) {});
    EXPECT_GT(queue.scheduled_count(), last);
    last = queue.scheduled_count();
    if (i % 3 == 0) {
      queue.cancel(id);  // cancels must never roll the counter back
      EXPECT_EQ(queue.scheduled_count(), last);
    }
    if (i % 5 == 0 && !queue.empty()) {
      queue.pop();  // neither must pops
      EXPECT_EQ(queue.scheduled_count(), last);
    }
  }
  EXPECT_EQ(last, 3000u);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Seconds> times;
  sim.schedule_at(2.5, [&](Seconds t) { times.push_back(t); });
  sim.schedule_at(1.0, [&](Seconds t) { times.push_back(t); });
  sim.run();
  EXPECT_EQ(times, (std::vector<Seconds>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, SchedulingInThePastClampsToNow) {
  Simulator sim;
  Seconds fired_at = -1.0;
  sim.schedule_at(5.0, [&](Seconds) {
    sim.schedule_at(1.0, [&](Seconds t) { fired_at = t; });  // past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RescheduleAtClampsToNowAndRetimes) {
  Simulator sim;
  std::vector<std::pair<int, Seconds>> fired;
  const EventId target = sim.schedule_at(10.0, [&](Seconds t) {
    fired.emplace_back(2, t);
  });
  sim.schedule_at(5.0, [&](Seconds t) {
    fired.emplace_back(1, t);
    // Retiming into the past clamps to now() — "immediately after this
    // event", exactly like schedule_at.
    EXPECT_TRUE(sim.reschedule_at(1.0, target));
  });
  sim.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].first, 1);
  EXPECT_EQ(fired[1].first, 2);
  EXPECT_DOUBLE_EQ(fired[1].second, 5.0);

  // Dead handles report false through the simulator too.
  EXPECT_FALSE(sim.reschedule_at(1.0, target));
}

TEST(Simulator, ScheduleInUsesDelay) {
  Simulator sim;
  Seconds fired_at = -1.0;
  sim.schedule_at(2.0, [&](Seconds) {
    sim.schedule_in(3.0, [&](Seconds t) { fired_at = t; });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Seconds) { ++fired; });
  sim.schedule_at(10.0, [&](Seconds) { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWithEmptyQueue) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, ReentrantSchedulingChains) {
  Simulator sim;
  int count = 0;
  // Each event schedules the next until 100 have run.
  std::function<void(Seconds)> chain = [&](Seconds) {
    if (++count < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
  EXPECT_EQ(sim.executed_count(), 100u);
}

TEST(Simulator, HandlerCanCancelPendingEvent) {
  Simulator sim;
  bool victim_fired = false;
  const EventId victim =
      sim.schedule_at(2.0, [&](Seconds) { victim_fired = true; });
  sim.schedule_at(1.0, [&](Seconds) { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [](Seconds) {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EqualTimeEventsRespectCausality) {
  // An event scheduled *at the current time* from within a handler must run
  // after all other handlers already queued at that time (it gets a later
  // sequence number) — this is what makes simultaneous arrival + completion
  // deterministic in the engine.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&](Seconds) {
    order.push_back(1);
    sim.schedule_at(1.0, [&](Seconds) { order.push_back(3); });
  });
  sim.schedule_at(1.0, [&](Seconds) { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace vodsim
