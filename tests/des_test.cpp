// Tests for the discrete-event kernel: ordering, cancellation, reentrancy.

#include <gtest/gtest.h>

#include <vector>

#include "vodsim/des/event_queue.h"
#include "vodsim/des/simulator.h"

namespace vodsim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(3.0, [&](Seconds) { fired.push_back(3); });
  queue.schedule(1.0, [&](Seconds) { fired.push_back(1); });
  queue.schedule(2.0, [&](Seconds) { fired.push_back(2); });
  while (!queue.empty()) {
    auto [time, fn] = queue.pop();
    fn(time);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&fired, i](Seconds) { fired.push_back(i); });
  }
  while (!queue.empty()) queue.pop().second(5.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.schedule(1.0, [&](Seconds) { fired = true; });
  queue.schedule(2.0, [](Seconds) {});
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 1u);
  while (!queue.empty()) queue.pop().second(0.0);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelInvalidIsNoop) {
  EventQueue queue;
  queue.cancel(kInvalidEventId);
  queue.cancel(9999);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, [](Seconds) {});
  queue.cancel(id);
  queue.cancel(id);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PeekSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.schedule(1.0, [](Seconds) {});
  queue.schedule(2.0, [](Seconds) {});
  queue.cancel(early);
  EXPECT_DOUBLE_EQ(queue.peek_time(), 2.0);
}

TEST(EventQueue, ManyScheduleCancelCycles) {
  EventQueue queue;
  int fired = 0;
  for (int round = 0; round < 1000; ++round) {
    const EventId keep =
        queue.schedule(static_cast<double>(round), [&](Seconds) { ++fired; });
    const EventId drop = queue.schedule(static_cast<double>(round) + 0.5,
                                        [&](Seconds) { FAIL() << "cancelled"; });
    queue.cancel(drop);
    (void)keep;
  }
  while (!queue.empty()) queue.pop().second(0.0);
  EXPECT_EQ(fired, 1000);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Seconds> times;
  sim.schedule_at(2.5, [&](Seconds t) { times.push_back(t); });
  sim.schedule_at(1.0, [&](Seconds t) { times.push_back(t); });
  sim.run();
  EXPECT_EQ(times, (std::vector<Seconds>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, SchedulingInThePastClampsToNow) {
  Simulator sim;
  Seconds fired_at = -1.0;
  sim.schedule_at(5.0, [&](Seconds) {
    sim.schedule_at(1.0, [&](Seconds t) { fired_at = t; });  // past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, ScheduleInUsesDelay) {
  Simulator sim;
  Seconds fired_at = -1.0;
  sim.schedule_at(2.0, [&](Seconds) {
    sim.schedule_in(3.0, [&](Seconds t) { fired_at = t; });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Seconds) { ++fired; });
  sim.schedule_at(10.0, [&](Seconds) { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWithEmptyQueue) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, ReentrantSchedulingChains) {
  Simulator sim;
  int count = 0;
  // Each event schedules the next until 100 have run.
  std::function<void(Seconds)> chain = [&](Seconds) {
    if (++count < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
  EXPECT_EQ(sim.executed_count(), 100u);
}

TEST(Simulator, HandlerCanCancelPendingEvent) {
  Simulator sim;
  bool victim_fired = false;
  const EventId victim =
      sim.schedule_at(2.0, [&](Seconds) { victim_fired = true; });
  sim.schedule_at(1.0, [&](Seconds) { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [](Seconds) {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EqualTimeEventsRespectCausality) {
  // An event scheduled *at the current time* from within a handler must run
  // after all other handlers already queued at that time (it gets a later
  // sequence number) — this is what makes simultaneous arrival + completion
  // deterministic in the engine.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&](Seconds) {
    order.push_back(1);
    sim.schedule_at(1.0, [&](Seconds) { order.push_back(3); });
  });
  sim.schedule_at(1.0, [&](Seconds) { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace vodsim
