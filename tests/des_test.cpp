// Tests for the discrete-event kernel: ordering, cancellation, reentrancy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "vodsim/des/event_queue.h"
#include "vodsim/des/simulator.h"

namespace vodsim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(3.0, [&](Seconds) { fired.push_back(3); });
  queue.schedule(1.0, [&](Seconds) { fired.push_back(1); });
  queue.schedule(2.0, [&](Seconds) { fired.push_back(2); });
  while (!queue.empty()) {
    auto [time, fn] = queue.pop();
    fn(time);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&fired, i](Seconds) { fired.push_back(i); });
  }
  while (!queue.empty()) queue.pop().second(5.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.schedule(1.0, [&](Seconds) { fired = true; });
  queue.schedule(2.0, [](Seconds) {});
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 1u);
  while (!queue.empty()) queue.pop().second(0.0);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelInvalidIsNoop) {
  EventQueue queue;
  queue.cancel(kInvalidEventId);
  queue.cancel(9999);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, [](Seconds) {});
  queue.cancel(id);
  queue.cancel(id);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PeekSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.schedule(1.0, [](Seconds) {});
  queue.schedule(2.0, [](Seconds) {});
  queue.cancel(early);
  EXPECT_DOUBLE_EQ(queue.peek_time(), 2.0);
}

TEST(EventQueue, ManyScheduleCancelCycles) {
  EventQueue queue;
  int fired = 0;
  for (int round = 0; round < 1000; ++round) {
    const EventId keep =
        queue.schedule(static_cast<double>(round), [&](Seconds) { ++fired; });
    const EventId drop = queue.schedule(static_cast<double>(round) + 0.5,
                                        [&](Seconds) { FAIL() << "cancelled"; });
    queue.cancel(drop);
    (void)keep;
  }
  while (!queue.empty()) queue.pop().second(0.0);
  EXPECT_EQ(fired, 1000);
}

TEST(EventQueue, CompactionUnderCancelChurnPreservesOrdering) {
  // Reschedule churn leaves dead entries in the heap; once they outnumber
  // live events past the compaction threshold, the heap is rebuilt in
  // place. The rebuild must not disturb firing order — neither across times
  // nor the schedule-order tie-break at equal times.
  EventQueue queue;
  std::vector<int> fired;
  std::vector<EventId> doomed;
  // Interleave survivors with events that will all be cancelled. Half the
  // survivors share one timestamp to exercise the equal-time tie-break
  // across a compaction.
  for (int i = 0; i < 4000; ++i) {
    const Seconds time = (i % 2 == 0) ? 500.0 : static_cast<double>(i);
    queue.schedule(time, [&fired, i](Seconds) { fired.push_back(i); });
    // Two doomed events per survivor: compaction requires dead to strictly
    // outnumber live.
    doomed.push_back(
        queue.schedule(static_cast<double>(i) + 0.25, [](Seconds) {}));
    doomed.push_back(
        queue.schedule(static_cast<double>(i) + 0.75, [](Seconds) {}));
  }
  const std::size_t entries_before = queue.heap_entries();
  for (const EventId id : doomed) queue.cancel(id);
  // Cancel itself never compacts (it is O(1)); the next schedule notices
  // dead > live and sweeps in place.
  EXPECT_EQ(queue.heap_entries(), entries_before);
  queue.schedule(1e9, [](Seconds) {});
  EXPECT_LT(queue.heap_entries(), entries_before / 2);
  EXPECT_EQ(queue.size(), 4001u);

  std::vector<int> expected;
  Seconds last = -1.0;
  while (!queue.empty()) {
    auto [time, fn] = queue.pop();
    EXPECT_GE(time, last);
    last = time;
    fn(time);
  }
  // Reconstruct the required order: ascending time, schedule order at ties.
  std::vector<std::pair<Seconds, int>> keyed;
  for (int i = 0; i < 4000; ++i) {
    keyed.emplace_back((i % 2 == 0) ? 500.0 : static_cast<double>(i), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [time, index] : keyed) expected.push_back(index);
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  // After an event fires (or is cancelled), its slot is recycled with a
  // bumped generation. An id retained from the old occupant must not be
  // able to kill the slot's new event.
  EventQueue queue;
  const EventId stale = queue.schedule(1.0, [](Seconds) {});
  queue.pop().second(1.0);  // fires; slot 0 freed

  bool fired = false;
  const EventId fresh = queue.schedule(2.0, [&](Seconds) { fired = true; });
  // Slot is reused, so the ids alias the same slot but differ by generation.
  EXPECT_NE(stale, fresh);
  queue.cancel(stale);  // must be a no-op
  EXPECT_EQ(queue.size(), 1u);
  queue.pop().second(2.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelledIdStaysStaleAfterSlotReuse) {
  EventQueue queue;
  const EventId first = queue.schedule(1.0, [](Seconds) {});
  queue.cancel(first);
  bool fired = false;
  queue.schedule(2.0, [&](Seconds) { fired = true; });
  queue.cancel(first);  // double cancel aimed at a recycled slot: no-op
  EXPECT_EQ(queue.size(), 1u);
  queue.pop().second(2.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ScheduledCountIsMonotone) {
  EventQueue queue;
  std::uint64_t last = queue.scheduled_count();
  EXPECT_EQ(last, 0u);
  for (int i = 0; i < 3000; ++i) {
    const EventId id = queue.schedule(static_cast<double>(i % 7), [](Seconds) {});
    EXPECT_GT(queue.scheduled_count(), last);
    last = queue.scheduled_count();
    if (i % 3 == 0) {
      queue.cancel(id);  // cancels must never roll the counter back
      EXPECT_EQ(queue.scheduled_count(), last);
    }
    if (i % 5 == 0 && !queue.empty()) {
      queue.pop();  // neither must pops
      EXPECT_EQ(queue.scheduled_count(), last);
    }
  }
  EXPECT_EQ(last, 3000u);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Seconds> times;
  sim.schedule_at(2.5, [&](Seconds t) { times.push_back(t); });
  sim.schedule_at(1.0, [&](Seconds t) { times.push_back(t); });
  sim.run();
  EXPECT_EQ(times, (std::vector<Seconds>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, SchedulingInThePastClampsToNow) {
  Simulator sim;
  Seconds fired_at = -1.0;
  sim.schedule_at(5.0, [&](Seconds) {
    sim.schedule_at(1.0, [&](Seconds t) { fired_at = t; });  // past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, ScheduleInUsesDelay) {
  Simulator sim;
  Seconds fired_at = -1.0;
  sim.schedule_at(2.0, [&](Seconds) {
    sim.schedule_in(3.0, [&](Seconds t) { fired_at = t; });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Seconds) { ++fired; });
  sim.schedule_at(10.0, [&](Seconds) { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWithEmptyQueue) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, ReentrantSchedulingChains) {
  Simulator sim;
  int count = 0;
  // Each event schedules the next until 100 have run.
  std::function<void(Seconds)> chain = [&](Seconds) {
    if (++count < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
  EXPECT_EQ(sim.executed_count(), 100u);
}

TEST(Simulator, HandlerCanCancelPendingEvent) {
  Simulator sim;
  bool victim_fired = false;
  const EventId victim =
      sim.schedule_at(2.0, [&](Seconds) { victim_fired = true; });
  sim.schedule_at(1.0, [&](Seconds) { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [](Seconds) {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EqualTimeEventsRespectCausality) {
  // An event scheduled *at the current time* from within a handler must run
  // after all other handlers already queued at that time (it gets a later
  // sequence number) — this is what makes simultaneous arrival + completion
  // deterministic in the engine.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&](Seconds) {
    order.push_back(1);
    sim.schedule_at(1.0, [&](Seconds) { order.push_back(3); });
  });
  sim.schedule_at(1.0, [&](Seconds) { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace vodsim
