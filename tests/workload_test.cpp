// Tests for vodsim/workload: Zipf law, Poisson arrivals, catalog generation,
// request generation, traces, popularity drift.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "vodsim/workload/catalog.h"
#include "vodsim/workload/drift.h"
#include "vodsim/workload/poisson.h"
#include "vodsim/workload/request_generator.h"
#include "vodsim/workload/trace.h"
#include "vodsim/workload/zipf.h"

namespace vodsim {
namespace {

// ---------------------------------------------------------------- zipf

TEST(Zipf, ProbabilitiesSumToOne) {
  for (double theta : {-1.5, -0.5, 0.0, 0.5, 1.0}) {
    ZipfDistribution zipf(100, theta);
    const double total = std::accumulate(zipf.probabilities().begin(),
                                         zipf.probabilities().end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12) << "theta=" << theta;
  }
}

TEST(Zipf, ThetaOneIsUniform) {
  ZipfDistribution zipf(50, 1.0);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_NEAR(zipf.pmf(i), 0.02, 1e-12);
}

TEST(Zipf, ThetaZeroIsClassicZipf) {
  ZipfDistribution zipf(10, 0.0);
  // p_i proportional to 1/i.
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(9), 10.0, 1e-9);
}

TEST(Zipf, NegativeThetaIsMoreSkewed) {
  ZipfDistribution mild(100, 0.5);
  ZipfDistribution zipf(100, 0.0);
  ZipfDistribution extreme(100, -1.5);
  EXPECT_LT(mild.pmf(0), zipf.pmf(0));
  EXPECT_LT(zipf.pmf(0), extreme.pmf(0));
  EXPECT_GT(extreme.head_mass(5), 0.9);  // exponent 2.5: head takes ~everything
}

TEST(Zipf, MonotoneNonIncreasingInRank) {
  ZipfDistribution zipf(64, 0.271);
  for (std::size_t i = 1; i < 64; ++i) EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1));
}

TEST(Zipf, LargerCatalogMoreHeadMassShare) {
  // At fixed theta < 1, the most popular item's *relative advantage* over
  // the mean grows with N.
  ZipfDistribution small(10, 0.0);
  ZipfDistribution large(1000, 0.0);
  EXPECT_LT(small.pmf(0) * 10.0, large.pmf(0) * 1000.0);
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfDistribution zipf(20, 0.0);
  Rng rng(99);
  std::vector<int> counts(20, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t i = 0; i < 20; ++i) {
    const double observed = counts[i] / static_cast<double>(kN);
    EXPECT_NEAR(observed, zipf.pmf(i), 0.005) << "rank " << i;
  }
}

TEST(Zipf, HeadMassBounds) {
  ZipfDistribution zipf(100, 0.0);
  EXPECT_DOUBLE_EQ(zipf.head_mass(0), 0.0);
  EXPECT_NEAR(zipf.head_mass(100), 1.0, 1e-12);
  EXPECT_NEAR(zipf.head_mass(200), 1.0, 1e-12);  // clamps
  EXPECT_GT(zipf.head_mass(10), zipf.head_mass(5));
}

TEST(Zipf, SingleItem) {
  ZipfDistribution zipf(1, 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(zipf.pmf(0), 1.0);
  EXPECT_EQ(zipf.sample(rng), 0u);
}

// ---------------------------------------------------------------- poisson

TEST(Poisson, MeanInterarrival) {
  PoissonProcess process(0.5);
  Rng rng(5);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += process.next_gap(rng);
  EXPECT_NEAR(total / kN, 2.0, 0.05);
}

TEST(Poisson, OfferedLoadRate) {
  // 5 servers x 100 Mb/s, mean video 20 min at 3 Mb/s = 3600 Mb.
  const double rate = offered_load_rate(500.0, minutes(20), 3.0, 1.0);
  EXPECT_NEAR(rate, 500.0 / 3600.0, 1e-12);
  EXPECT_NEAR(offered_load_rate(500.0, minutes(20), 3.0, 0.5), rate / 2.0, 1e-12);
}

TEST(Poisson, OfferedLoadSaturatesCapacityInExpectation) {
  // rate x mean video size == total bandwidth at load factor 1.
  const double rate = offered_load_rate(6000.0, hours(1.5), 3.0, 1.0);
  EXPECT_NEAR(rate * hours(1.5) * 3.0, 6000.0, 1e-9);
}

// ---------------------------------------------------------------- catalog

TEST(Catalog, GeneratesRequestedShape) {
  CatalogSpec spec;
  spec.num_videos = 50;
  spec.min_duration = minutes(10);
  spec.max_duration = minutes(30);
  spec.view_bandwidth = 3.0;
  Rng rng(3);
  const VideoCatalog catalog = generate_catalog(spec, rng);
  ASSERT_EQ(catalog.size(), 50u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const Video& video = catalog[static_cast<VideoId>(i)];
    EXPECT_EQ(video.id, static_cast<VideoId>(i));
    EXPECT_GE(video.duration, minutes(10));
    EXPECT_LE(video.duration, minutes(30));
    EXPECT_DOUBLE_EQ(video.size(), video.duration * 3.0);
  }
}

TEST(Catalog, MeanStatistics) {
  CatalogSpec spec;
  spec.num_videos = 2000;
  Rng rng(4);
  const VideoCatalog catalog = generate_catalog(spec, rng);
  EXPECT_NEAR(catalog.mean_duration(), minutes(20), minutes(1));
  EXPECT_NEAR(catalog.mean_size(), minutes(20) * 3.0, minutes(1) * 3.0);
}

// ---------------------------------------------------------------- generator

TEST(RequestGenerator, TimesStrictlyIncreaseAndVideosValid) {
  StaticZipfPopularity popularity(30, 0.271);
  RequestGenerator generator(PoissonProcess(1.0), popularity, 77);
  Seconds last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const auto arrival = generator.next();
    ASSERT_TRUE(arrival.has_value());
    EXPECT_GT(arrival->time, last);
    last = arrival->time;
    EXPECT_GE(arrival->video, 0);
    EXPECT_LT(arrival->video, 30);
  }
}

TEST(RequestGenerator, DeterministicFromSeed) {
  StaticZipfPopularity popularity(30, 0.0);
  RequestGenerator a(PoissonProcess(2.0), popularity, 42);
  RequestGenerator b(PoissonProcess(2.0), popularity, 42);
  for (int i = 0; i < 200; ++i) {
    const auto arrival_a = a.next();
    const auto arrival_b = b.next();
    EXPECT_DOUBLE_EQ(arrival_a->time, arrival_b->time);
    EXPECT_EQ(arrival_a->video, arrival_b->video);
  }
}

TEST(RequestGenerator, RateMatches) {
  StaticZipfPopularity popularity(5, 1.0);
  RequestGenerator generator(PoissonProcess(0.25), popularity, 5);
  Seconds last = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) last = generator.next()->time;
  EXPECT_NEAR(last / kN, 4.0, 0.1);
}

// ---------------------------------------------------------------- trace

TEST(Trace, RecordAndReplay) {
  StaticZipfPopularity popularity(10, 0.0);
  RequestGenerator generator(PoissonProcess(1.0), popularity, 9);
  const RequestTrace trace = RequestTrace::record(generator, 100);
  ASSERT_EQ(trace.size(), 100u);

  TraceArrivalSource source(trace);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto arrival = source.next();
    ASSERT_TRUE(arrival.has_value());
    EXPECT_DOUBLE_EQ(arrival->time, trace[i].time);
    EXPECT_EQ(arrival->video, trace[i].video);
  }
  EXPECT_FALSE(source.next().has_value());
}

TEST(Trace, CsvRoundTrip) {
  StaticZipfPopularity popularity(10, 0.0);
  RequestGenerator generator(PoissonProcess(1.0), popularity, 10);
  const RequestTrace trace = RequestTrace::record(generator, 50);

  std::stringstream buffer;
  trace.save(buffer);
  const RequestTrace loaded = RequestTrace::load(buffer);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, trace[i].time);
    EXPECT_EQ(loaded[i].video, trace[i].video);
  }
}

TEST(Trace, RecordUntilHorizon) {
  StaticZipfPopularity popularity(10, 0.0);
  RequestGenerator generator(PoissonProcess(1.0), popularity, 11);
  const RequestTrace trace = RequestTrace::record_until(generator, 100.0);
  EXPECT_GT(trace.size(), 50u);
  EXPECT_LT(trace.size(), 200u);
  for (std::size_t i = 0; i < trace.size(); ++i) EXPECT_LE(trace[i].time, 100.0);
}

TEST(Trace, LoadRejectsBadHeader) {
  std::stringstream bad("nope,header\n1,2\n");
  EXPECT_THROW(RequestTrace::load(bad), std::runtime_error);
}

TEST(Trace, LoadRejectsBackwardsTime) {
  std::stringstream bad("time_s,video_id\n5,0\n3,1\n");
  EXPECT_THROW(RequestTrace::load(bad), std::runtime_error);
}

TEST(Trace, LoadRejectsGarbageRow) {
  std::stringstream bad("time_s,video_id\nxyz,0\n");
  EXPECT_THROW(RequestTrace::load(bad), std::runtime_error);
}

// ---------------------------------------------------------------- drift

TEST(Drift, StaticModelIgnoresTime) {
  StaticZipfPopularity popularity(20, 0.0);
  EXPECT_EQ(popularity.probabilities(0.0), popularity.probabilities(1e6));
}

TEST(Drift, ProbabilitiesAlwaysSumToOne) {
  DriftingZipfPopularity drifting(30, 0.0, hours(10), 7);
  for (Seconds t : {0.0, hours(5), hours(15), hours(123)}) {
    const auto probs = drifting.probabilities(t);
    EXPECT_NEAR(std::accumulate(probs.begin(), probs.end(), 0.0), 1.0, 1e-12);
  }
}

TEST(Drift, RotatesByStepEachEpoch) {
  DriftingZipfPopularity drifting(10, 0.0, 100.0, 3);
  EXPECT_EQ(drifting.epoch(0.0), 0u);
  EXPECT_EQ(drifting.epoch(99.9), 0u);
  EXPECT_EQ(drifting.epoch(100.0), 1u);
  EXPECT_EQ(drifting.video_at_rank(0.0, 0), 0);
  EXPECT_EQ(drifting.video_at_rank(150.0, 0), 3);
  EXPECT_EQ(drifting.video_at_rank(250.0, 0), 6);
  EXPECT_EQ(drifting.video_at_rank(350.0, 9), (9 + 9) % 10);
}

TEST(Drift, ZeroStepDegeneratesToStatic) {
  DriftingZipfPopularity drifting(15, 0.5, 100.0, 0);
  StaticZipfPopularity fixed(15, 0.5);
  EXPECT_EQ(drifting.probabilities(1e6), fixed.probabilities(0.0));
}

TEST(Drift, SamplingFollowsShiftedLaw) {
  DriftingZipfPopularity drifting(10, -1.0, 100.0, 4);
  Rng rng(12);
  // In epoch 2 the most popular video is (0 + 2*4) % 10 = 8.
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<std::size_t>(drifting.sample(250.0, rng))];
  }
  const auto hottest =
      std::distance(counts.begin(), std::max_element(counts.begin(), counts.end()));
  EXPECT_EQ(hottest, 8);
}

}  // namespace
}  // namespace vodsim
