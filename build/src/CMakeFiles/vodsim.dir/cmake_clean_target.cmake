file(REMOVE_RECURSE
  "libvodsim.a"
)
