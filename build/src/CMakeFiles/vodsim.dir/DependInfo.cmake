
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vodsim/admission/assignment.cpp" "src/CMakeFiles/vodsim.dir/vodsim/admission/assignment.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/admission/assignment.cpp.o.d"
  "/root/repo/src/vodsim/admission/controller.cpp" "src/CMakeFiles/vodsim.dir/vodsim/admission/controller.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/admission/controller.cpp.o.d"
  "/root/repo/src/vodsim/admission/migration.cpp" "src/CMakeFiles/vodsim.dir/vodsim/admission/migration.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/admission/migration.cpp.o.d"
  "/root/repo/src/vodsim/analysis/erlang.cpp" "src/CMakeFiles/vodsim.dir/vodsim/analysis/erlang.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/analysis/erlang.cpp.o.d"
  "/root/repo/src/vodsim/analysis/svbr.cpp" "src/CMakeFiles/vodsim.dir/vodsim/analysis/svbr.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/analysis/svbr.cpp.o.d"
  "/root/repo/src/vodsim/cluster/client.cpp" "src/CMakeFiles/vodsim.dir/vodsim/cluster/client.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/cluster/client.cpp.o.d"
  "/root/repo/src/vodsim/cluster/request.cpp" "src/CMakeFiles/vodsim.dir/vodsim/cluster/request.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/cluster/request.cpp.o.d"
  "/root/repo/src/vodsim/cluster/server.cpp" "src/CMakeFiles/vodsim.dir/vodsim/cluster/server.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/cluster/server.cpp.o.d"
  "/root/repo/src/vodsim/cluster/video.cpp" "src/CMakeFiles/vodsim.dir/vodsim/cluster/video.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/cluster/video.cpp.o.d"
  "/root/repo/src/vodsim/des/event_queue.cpp" "src/CMakeFiles/vodsim.dir/vodsim/des/event_queue.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/des/event_queue.cpp.o.d"
  "/root/repo/src/vodsim/des/simulator.cpp" "src/CMakeFiles/vodsim.dir/vodsim/des/simulator.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/des/simulator.cpp.o.d"
  "/root/repo/src/vodsim/engine/config.cpp" "src/CMakeFiles/vodsim.dir/vodsim/engine/config.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/engine/config.cpp.o.d"
  "/root/repo/src/vodsim/engine/experiment.cpp" "src/CMakeFiles/vodsim.dir/vodsim/engine/experiment.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/engine/experiment.cpp.o.d"
  "/root/repo/src/vodsim/engine/failure.cpp" "src/CMakeFiles/vodsim.dir/vodsim/engine/failure.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/engine/failure.cpp.o.d"
  "/root/repo/src/vodsim/engine/metrics.cpp" "src/CMakeFiles/vodsim.dir/vodsim/engine/metrics.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/engine/metrics.cpp.o.d"
  "/root/repo/src/vodsim/engine/policy_matrix.cpp" "src/CMakeFiles/vodsim.dir/vodsim/engine/policy_matrix.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/engine/policy_matrix.cpp.o.d"
  "/root/repo/src/vodsim/engine/vod_simulation.cpp" "src/CMakeFiles/vodsim.dir/vodsim/engine/vod_simulation.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/engine/vod_simulation.cpp.o.d"
  "/root/repo/src/vodsim/placement/bsr.cpp" "src/CMakeFiles/vodsim.dir/vodsim/placement/bsr.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/placement/bsr.cpp.o.d"
  "/root/repo/src/vodsim/placement/even.cpp" "src/CMakeFiles/vodsim.dir/vodsim/placement/even.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/placement/even.cpp.o.d"
  "/root/repo/src/vodsim/placement/partial_predictive.cpp" "src/CMakeFiles/vodsim.dir/vodsim/placement/partial_predictive.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/placement/partial_predictive.cpp.o.d"
  "/root/repo/src/vodsim/placement/placement.cpp" "src/CMakeFiles/vodsim.dir/vodsim/placement/placement.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/placement/placement.cpp.o.d"
  "/root/repo/src/vodsim/placement/predictive.cpp" "src/CMakeFiles/vodsim.dir/vodsim/placement/predictive.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/placement/predictive.cpp.o.d"
  "/root/repo/src/vodsim/replication/replication.cpp" "src/CMakeFiles/vodsim.dir/vodsim/replication/replication.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/replication/replication.cpp.o.d"
  "/root/repo/src/vodsim/sched/continuous.cpp" "src/CMakeFiles/vodsim.dir/vodsim/sched/continuous.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/sched/continuous.cpp.o.d"
  "/root/repo/src/vodsim/sched/eftf.cpp" "src/CMakeFiles/vodsim.dir/vodsim/sched/eftf.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/sched/eftf.cpp.o.d"
  "/root/repo/src/vodsim/sched/intermittent.cpp" "src/CMakeFiles/vodsim.dir/vodsim/sched/intermittent.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/sched/intermittent.cpp.o.d"
  "/root/repo/src/vodsim/sched/lftf.cpp" "src/CMakeFiles/vodsim.dir/vodsim/sched/lftf.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/sched/lftf.cpp.o.d"
  "/root/repo/src/vodsim/sched/proportional.cpp" "src/CMakeFiles/vodsim.dir/vodsim/sched/proportional.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/sched/proportional.cpp.o.d"
  "/root/repo/src/vodsim/sched/scheduler.cpp" "src/CMakeFiles/vodsim.dir/vodsim/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/sched/scheduler.cpp.o.d"
  "/root/repo/src/vodsim/stats/accumulator.cpp" "src/CMakeFiles/vodsim.dir/vodsim/stats/accumulator.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/stats/accumulator.cpp.o.d"
  "/root/repo/src/vodsim/stats/batch_means.cpp" "src/CMakeFiles/vodsim.dir/vodsim/stats/batch_means.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/stats/batch_means.cpp.o.d"
  "/root/repo/src/vodsim/stats/histogram.cpp" "src/CMakeFiles/vodsim.dir/vodsim/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/stats/histogram.cpp.o.d"
  "/root/repo/src/vodsim/stats/student_t.cpp" "src/CMakeFiles/vodsim.dir/vodsim/stats/student_t.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/stats/student_t.cpp.o.d"
  "/root/repo/src/vodsim/stats/time_weighted.cpp" "src/CMakeFiles/vodsim.dir/vodsim/stats/time_weighted.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/stats/time_weighted.cpp.o.d"
  "/root/repo/src/vodsim/util/cli.cpp" "src/CMakeFiles/vodsim.dir/vodsim/util/cli.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/util/cli.cpp.o.d"
  "/root/repo/src/vodsim/util/csv.cpp" "src/CMakeFiles/vodsim.dir/vodsim/util/csv.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/util/csv.cpp.o.d"
  "/root/repo/src/vodsim/util/env.cpp" "src/CMakeFiles/vodsim.dir/vodsim/util/env.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/util/env.cpp.o.d"
  "/root/repo/src/vodsim/util/log.cpp" "src/CMakeFiles/vodsim.dir/vodsim/util/log.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/util/log.cpp.o.d"
  "/root/repo/src/vodsim/util/rng.cpp" "src/CMakeFiles/vodsim.dir/vodsim/util/rng.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/util/rng.cpp.o.d"
  "/root/repo/src/vodsim/util/table.cpp" "src/CMakeFiles/vodsim.dir/vodsim/util/table.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/util/table.cpp.o.d"
  "/root/repo/src/vodsim/util/thread_pool.cpp" "src/CMakeFiles/vodsim.dir/vodsim/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/util/thread_pool.cpp.o.d"
  "/root/repo/src/vodsim/workload/analysis.cpp" "src/CMakeFiles/vodsim.dir/vodsim/workload/analysis.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/workload/analysis.cpp.o.d"
  "/root/repo/src/vodsim/workload/catalog.cpp" "src/CMakeFiles/vodsim.dir/vodsim/workload/catalog.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/workload/catalog.cpp.o.d"
  "/root/repo/src/vodsim/workload/drift.cpp" "src/CMakeFiles/vodsim.dir/vodsim/workload/drift.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/workload/drift.cpp.o.d"
  "/root/repo/src/vodsim/workload/poisson.cpp" "src/CMakeFiles/vodsim.dir/vodsim/workload/poisson.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/workload/poisson.cpp.o.d"
  "/root/repo/src/vodsim/workload/request_generator.cpp" "src/CMakeFiles/vodsim.dir/vodsim/workload/request_generator.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/workload/request_generator.cpp.o.d"
  "/root/repo/src/vodsim/workload/trace.cpp" "src/CMakeFiles/vodsim.dir/vodsim/workload/trace.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/workload/trace.cpp.o.d"
  "/root/repo/src/vodsim/workload/zipf.cpp" "src/CMakeFiles/vodsim.dir/vodsim/workload/zipf.cpp.o" "gcc" "src/CMakeFiles/vodsim.dir/vodsim/workload/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
