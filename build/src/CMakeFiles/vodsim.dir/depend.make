# Empty dependencies file for vodsim.
# This may be replaced when dependencies are built.
