# Empty compiler generated dependencies file for movie_service.
# This may be replaced when dependencies are built.
