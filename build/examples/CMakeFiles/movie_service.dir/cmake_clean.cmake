file(REMOVE_RECURSE
  "CMakeFiles/movie_service.dir/movie_service.cpp.o"
  "CMakeFiles/movie_service.dir/movie_service.cpp.o.d"
  "movie_service"
  "movie_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
