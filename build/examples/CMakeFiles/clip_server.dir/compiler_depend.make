# Empty compiler generated dependencies file for clip_server.
# This may be replaced when dependencies are built.
