file(REMOVE_RECURSE
  "CMakeFiles/clip_server.dir/clip_server.cpp.o"
  "CMakeFiles/clip_server.dir/clip_server.cpp.o.d"
  "clip_server"
  "clip_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clip_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
