# Empty dependencies file for vodsim_cli.
# This may be replaced when dependencies are built.
