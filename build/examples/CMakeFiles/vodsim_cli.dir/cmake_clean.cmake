file(REMOVE_RECURSE
  "CMakeFiles/vodsim_cli.dir/vodsim_cli.cpp.o"
  "CMakeFiles/vodsim_cli.dir/vodsim_cli.cpp.o.d"
  "vodsim_cli"
  "vodsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
