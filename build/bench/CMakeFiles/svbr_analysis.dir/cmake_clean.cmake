file(REMOVE_RECURSE
  "CMakeFiles/svbr_analysis.dir/svbr_analysis.cpp.o"
  "CMakeFiles/svbr_analysis.dir/svbr_analysis.cpp.o.d"
  "svbr_analysis"
  "svbr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svbr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
