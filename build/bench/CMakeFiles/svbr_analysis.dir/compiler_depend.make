# Empty compiler generated dependencies file for svbr_analysis.
# This may be replaced when dependencies are built.
