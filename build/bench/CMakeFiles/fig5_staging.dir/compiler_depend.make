# Empty compiler generated dependencies file for fig5_staging.
# This may be replaced when dependencies are built.
