file(REMOVE_RECURSE
  "CMakeFiles/fig5_staging.dir/fig5_staging.cpp.o"
  "CMakeFiles/fig5_staging.dir/fig5_staging.cpp.o.d"
  "fig5_staging"
  "fig5_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
