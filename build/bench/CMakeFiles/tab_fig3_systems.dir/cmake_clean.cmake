file(REMOVE_RECURSE
  "CMakeFiles/tab_fig3_systems.dir/tab_fig3_systems.cpp.o"
  "CMakeFiles/tab_fig3_systems.dir/tab_fig3_systems.cpp.o.d"
  "tab_fig3_systems"
  "tab_fig3_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_fig3_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
