# Empty dependencies file for tab_fig3_systems.
# This may be replaced when dependencies are built.
