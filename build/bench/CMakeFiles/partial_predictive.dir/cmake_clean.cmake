file(REMOVE_RECURSE
  "CMakeFiles/partial_predictive.dir/partial_predictive.cpp.o"
  "CMakeFiles/partial_predictive.dir/partial_predictive.cpp.o.d"
  "partial_predictive"
  "partial_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
