# Empty compiler generated dependencies file for partial_predictive.
# This may be replaced when dependencies are built.
