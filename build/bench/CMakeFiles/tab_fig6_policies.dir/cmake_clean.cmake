file(REMOVE_RECURSE
  "CMakeFiles/tab_fig6_policies.dir/tab_fig6_policies.cpp.o"
  "CMakeFiles/tab_fig6_policies.dir/tab_fig6_policies.cpp.o.d"
  "tab_fig6_policies"
  "tab_fig6_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_fig6_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
