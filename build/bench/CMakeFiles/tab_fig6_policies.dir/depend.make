# Empty dependencies file for tab_fig6_policies.
# This may be replaced when dependencies are built.
