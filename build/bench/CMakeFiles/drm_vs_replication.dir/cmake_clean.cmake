file(REMOVE_RECURSE
  "CMakeFiles/drm_vs_replication.dir/drm_vs_replication.cpp.o"
  "CMakeFiles/drm_vs_replication.dir/drm_vs_replication.cpp.o.d"
  "drm_vs_replication"
  "drm_vs_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drm_vs_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
