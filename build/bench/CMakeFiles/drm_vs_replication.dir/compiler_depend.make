# Empty compiler generated dependencies file for drm_vs_replication.
# This may be replaced when dependencies are built.
