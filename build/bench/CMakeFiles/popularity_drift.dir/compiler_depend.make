# Empty compiler generated dependencies file for popularity_drift.
# This may be replaced when dependencies are built.
