file(REMOVE_RECURSE
  "CMakeFiles/popularity_drift.dir/popularity_drift.cpp.o"
  "CMakeFiles/popularity_drift.dir/popularity_drift.cpp.o.d"
  "popularity_drift"
  "popularity_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popularity_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
