# Empty compiler generated dependencies file for interactivity.
# This may be replaced when dependencies are built.
