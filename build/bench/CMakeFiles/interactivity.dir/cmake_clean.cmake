file(REMOVE_RECURSE
  "CMakeFiles/interactivity.dir/interactivity.cpp.o"
  "CMakeFiles/interactivity.dir/interactivity.cpp.o.d"
  "interactivity"
  "interactivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
