file(REMOVE_RECURSE
  "CMakeFiles/fig4_migration.dir/fig4_migration.cpp.o"
  "CMakeFiles/fig4_migration.dir/fig4_migration.cpp.o.d"
  "fig4_migration"
  "fig4_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
