# Empty dependencies file for fig4_migration.
# This may be replaced when dependencies are built.
