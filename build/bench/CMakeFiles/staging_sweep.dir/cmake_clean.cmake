file(REMOVE_RECURSE
  "CMakeFiles/staging_sweep.dir/staging_sweep.cpp.o"
  "CMakeFiles/staging_sweep.dir/staging_sweep.cpp.o.d"
  "staging_sweep"
  "staging_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staging_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
