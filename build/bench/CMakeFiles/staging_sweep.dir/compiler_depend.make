# Empty compiler generated dependencies file for staging_sweep.
# This may be replaced when dependencies are built.
