# Empty compiler generated dependencies file for intermittent_admission.
# This may be replaced when dependencies are built.
