file(REMOVE_RECURSE
  "CMakeFiles/intermittent_admission.dir/intermittent_admission.cpp.o"
  "CMakeFiles/intermittent_admission.dir/intermittent_admission.cpp.o.d"
  "intermittent_admission"
  "intermittent_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intermittent_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
