# Empty dependencies file for workload_analysis_test.
# This may be replaced when dependencies are built.
