# Empty dependencies file for interactivity_test.
# This may be replaced when dependencies are built.
