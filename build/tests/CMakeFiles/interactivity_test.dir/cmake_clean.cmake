file(REMOVE_RECURSE
  "CMakeFiles/interactivity_test.dir/interactivity_test.cpp.o"
  "CMakeFiles/interactivity_test.dir/interactivity_test.cpp.o.d"
  "interactivity_test"
  "interactivity_test.pdb"
  "interactivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
