file(REMOVE_RECURSE
  "CMakeFiles/intermittent_test.dir/intermittent_test.cpp.o"
  "CMakeFiles/intermittent_test.dir/intermittent_test.cpp.o.d"
  "intermittent_test"
  "intermittent_test.pdb"
  "intermittent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intermittent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
