# Empty dependencies file for intermittent_test.
# This may be replaced when dependencies are built.
