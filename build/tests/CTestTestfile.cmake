# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/workload_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/admission_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/simulation_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/interactivity_test[1]_include.cmake")
include("/root/repo/build/tests/intermittent_test[1]_include.cmake")
