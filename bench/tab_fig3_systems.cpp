/// \file tab_fig3_systems.cpp
/// \brief E1 / paper Figure 3 (table): the two system configurations, plus
/// derived quantities (SVBR, arrival rate, storage feasibility) and a
/// placement dry-run validating that the replica budget fits on disk.

#include <iostream>

#include "vodsim/engine/config.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/util/table.h"

int main() {
  using namespace vodsim;
  std::cout << "=== E1 / Figure 3: video server system parameters ===\n\n";

  const SystemConfig small = SystemConfig::small_system();
  const SystemConfig large = SystemConfig::large_system();

  TablePrinter table({"parameter", "small", "large"});
  table.set_align(1, Align::kRight);
  table.set_align(2, Align::kRight);
  auto row = [&](const std::string& name, const std::string& s, const std::string& l) {
    table.add_row({name, s, l});
  };
  row("number of servers", std::to_string(small.num_servers),
      std::to_string(large.num_servers));
  row("server bandwidth (Mb/s)", TablePrinter::num(small.server_bandwidth, 0),
      TablePrinter::num(large.server_bandwidth, 0));
  row("video length (min)",
      TablePrinter::num(small.video_min_duration / 60, 0) + "-" +
          TablePrinter::num(small.video_max_duration / 60, 0),
      TablePrinter::num(large.video_min_duration / 60, 0) + "-" +
          TablePrinter::num(large.video_max_duration / 60, 0));
  row("number of videos (assumed)", std::to_string(small.num_videos),
      std::to_string(large.num_videos));
  row("avg copies per video", TablePrinter::num(small.avg_copies, 1),
      TablePrinter::num(large.avg_copies, 1));
  row("disk capacity (GB)", TablePrinter::num(to_gigabytes(small.server_storage), 0),
      TablePrinter::num(to_gigabytes(large.server_storage), 0));
  row("view bandwidth (Mb/s)", TablePrinter::num(small.view_bandwidth, 0),
      TablePrinter::num(large.view_bandwidth, 0));
  row("derived: SVBR (streams/server)", TablePrinter::num(small.svbr(), 1),
      TablePrinter::num(large.svbr(), 1));
  row("derived: aggregate bandwidth (Mb/s)",
      TablePrinter::num(small.total_bandwidth(), 0),
      TablePrinter::num(large.total_bandwidth(), 0));

  SimulationConfig sc;
  sc.system = small;
  SimulationConfig lc;
  lc.system = large;
  row("derived: arrivals/hour @100% load",
      TablePrinter::num(sc.arrival_rate() * 3600, 0),
      TablePrinter::num(lc.arrival_rate() * 3600, 0));
  row("derived: mean video size (GB)",
      TablePrinter::num(to_gigabytes(small.mean_video_size()), 2),
      TablePrinter::num(to_gigabytes(large.mean_video_size()), 2));
  table.print(std::cout);

  // Placement feasibility dry-run: construct each world and verify the full
  // replica budget lands on disk.
  std::cout << "\nplacement feasibility (even allocation):\n";
  for (const SystemConfig& system : {small, large}) {
    SimulationConfig config;
    config.system = system;
    config.duration = hours(1);
    config.warmup = 0.0;
    VodSimulation simulation(config);
    const PlacementResult& placement = simulation.placement_result();
    double used = 0.0;
    double capacity = 0.0;
    for (const Server& server : simulation.servers()) {
      used += server.storage_used();
      capacity += server.storage_capacity();
    }
    std::cout << "  " << system.name << ": " << placement.placed_total
              << " replicas placed, shortfall " << placement.shortfall
              << ", disk used " << TablePrinter::pct(used / capacity) << "\n";
  }
  return 0;
}
