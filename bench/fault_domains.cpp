/// \file fault_domains.cpp
/// \brief M5: failure-domain topology under rack-outage and partition storms.
///
/// Two tables. The headline: unavailability and rejection vs replication
/// degree under a rack outage storm, even placement vs domain_spread, on
/// the rack/zone tree. Anti-affinity only matters when a title has copies
/// to spread, so the gap should open as avg_copies grows past 1. The
/// second table: partition storms (servers up but unreachable) and how
/// fast the retry queue re-admits parked streams on heal.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("M5 / failure domains",
                            "rack outages and partitions vs placement spread");

  const BenchScale scale = bench_scale();
  const SystemConfig system = SystemConfig::large_system();

  auto storm_base = [&]() {
    SimulationConfig config = bench::base_config(system);
    config.zipf_theta = 0.271;
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.admission.migration.enabled = true;
    config.admission.migration.max_hops_per_request = 1;
    config.topology.enabled = true;
    config.topology.racks = 5;  // 4 servers per rack
    config.topology.zones = 2;
    // Arm the failure subsystem with crashes pushed past any horizon, so
    // the storm is purely the domain episodes under test.
    config.failure.enabled = true;
    config.failure.mean_time_between_failures = hours(1e9);
    config.failure.recover_via_migration = true;
    config.failure.retry.enabled = true;
    config.failure.retry.max_queue = 256;
    return config;
  };

  // ---- Table 1: rack outage storm, even vs domain_spread ----------------
  const std::vector<double> degrees = {1.0, 1.5, 2.0};
  std::vector<SimulationConfig> configs;
  for (double degree : degrees) {
    for (PlacementKind kind : {PlacementKind::kEven, PlacementKind::kDomainSpread}) {
      SimulationConfig config = storm_base();
      config.system.avg_copies = degree;
      config.placement.kind = kind;
      config.failure.domains.rack_outage.enabled = true;
      config.failure.domains.rack_outage.mean_time_between = hours(2);
      config.failure.domains.rack_outage.mean_duration = minutes(20);
      configs.push_back(config);
    }
  }
  ExperimentRunner runner;
  auto points = runner.run_sweep(configs, scale.trials);

  // Capacity unavailability (lost link-seconds) is a property of the fault
  // schedule alone — identical for both placements by construction. The
  // headline is *service* unavailability: the fraction of requested streams
  // the cluster failed to serve to completion (rejected or dropped).
  TablePrinter table({"avg copies", "placement", "service unavailability",
                      "rejection ratio", "drops / 1k accepts",
                      "interruptions / 1k accepts"});
  for (std::size_t d = 0; d < degrees.size(); ++d) {
    for (int k = 0; k < 2; ++k) {
      const ExperimentPoint& point = points[d * 2 + static_cast<std::size_t>(k)];
      Accumulator unavailability, drops_per_k, interruptions_per_k;
      for (const TrialResult& trial : point.trials) {
        const double arrivals =
            trial.arrivals > 0 ? static_cast<double>(trial.arrivals) : 1.0;
        unavailability.add(
            static_cast<double>(trial.rejects + trial.drops) / arrivals);
        const double accepts =
            trial.accepts > 0 ? static_cast<double>(trial.accepts) : 1.0;
        drops_per_k.add(1000.0 * static_cast<double>(trial.drops) / accepts);
        interruptions_per_k.add(
            1000.0 * static_cast<double>(trial.interruptions) / accepts);
      }
      table.add_row({TablePrinter::num(degrees[d], 1),
                     k ? "domain_spread" : "even",
                     format_mean_ci(unavailability),
                     format_mean_ci(point.rejection_ratio),
                     format_mean_ci(drops_per_k, 2),
                     format_mean_ci(interruptions_per_k, 2)});
    }
  }
  std::cout << "-- rack outage storm (MTBE 2 h/rack, 20 min outages), "
            << system.name << " system --\n";
  table.print(std::cout);
  std::cout << "\n";

  // ---- Table 2: partition storm and heal-time recovery ------------------
  std::vector<SimulationConfig> partition_configs;
  for (PlacementKind kind : {PlacementKind::kEven, PlacementKind::kDomainSpread}) {
    SimulationConfig config = storm_base();
    config.system.avg_copies = 1.5;
    config.placement.kind = kind;
    config.failure.domains.partition.enabled = true;
    config.failure.domains.partition.mean_time_between = hours(1);
    config.failure.domains.partition.mean_duration = minutes(5);
    partition_configs.push_back(config);
  }
  points = runner.run_sweep(partition_configs, scale.trials);

  TablePrinter heal_table({"placement", "partitions", "mean partition s",
                           "readmissions / heal", "service unavailability"});
  for (int k = 0; k < 2; ++k) {
    const ExperimentPoint& point = points[static_cast<std::size_t>(k)];
    Accumulator episodes, mean_partition, readmissions_per_heal, unavailability;
    for (const TrialResult& trial : point.trials) {
      episodes.add(static_cast<double>(trial.partitions));
      mean_partition.add(trial.mean_partition_time);
      const double heals =
          trial.partition_heals > 0 ? static_cast<double>(trial.partition_heals)
                                    : 1.0;
      readmissions_per_heal.add(static_cast<double>(trial.readmissions) / heals);
      const double arrivals =
          trial.arrivals > 0 ? static_cast<double>(trial.arrivals) : 1.0;
      unavailability.add(
          static_cast<double>(trial.rejects + trial.drops) / arrivals);
    }
    heal_table.add_row({k ? "domain_spread" : "even",
                        format_mean_ci(episodes, 1),
                        format_mean_ci(mean_partition, 1),
                        format_mean_ci(readmissions_per_heal, 2),
                        format_mean_ci(unavailability)});
  }
  std::cout << "-- partition storm (MTBE 1 h/rack, 5 min partitions), "
            << "avg copies 1.5 --\n";
  heal_table.print(std::cout);
  std::cout << "\n";
  return 0;
}
