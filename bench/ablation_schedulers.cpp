/// \file ablation_schedulers.cpp
/// \brief E10 / Theorem 1 ablation: how much does EFTF's ordering matter?
///
/// Same minimum-flow admission everywhere; only the workahead ordering
/// differs: EFTF (earliest projected finish first), proportional share,
/// LFTF (latest finish first — the adversarial mirror), and continuous (no
/// workahead at all). Theorem 1 says EFTF is the optimal minimum-flow
/// schedule under unbounded receive bandwidth; empirically it should stay
/// on top under the 30 Mb/s cap too.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E10 / scheduler ablation",
                            "EFTF vs other minimum-flow orderings");

  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kEftf, SchedulerKind::kProportional, SchedulerKind::kLftf,
      SchedulerKind::kContinuous};
  std::vector<std::string> labels;
  for (SchedulerKind kind : kinds) labels.push_back(to_string(kind));

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    bench::run_theta_sweep(
        system.name + " system (20% staging, no migration)", labels,
        [&](std::size_t series, double theta) {
          SimulationConfig config = bench::base_config(system);
          config.zipf_theta = theta;
          config.scheduler = kinds[series];
          config.client.staging_fraction = 0.2;
          config.client.receive_bandwidth = 30.0;
          return config;
        });
  }
  return 0;
}
