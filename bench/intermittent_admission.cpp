/// \file intermittent_admission.cpp
/// \brief E16 / paper §3.3 extension: beyond minimum flow.
///
/// The paper restricts itself to minimum-flow schedulers because the
/// optimal intermittent decision procedure is impractical. This bench runs
/// a practical intermittent heuristic with buffer-aware admission and asks:
/// how much utilization does the aggressive policy buy, and what does it
/// cost in playback continuity? (The paper's implicit claim: not enough to
/// justify the risk — minimum flow plus EFTF is the sweet spot.)

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E16 / intermittent + buffer-aware admission",
                            "what does minimum flow leave on the table?");

  const BenchScale scale = bench_scale();
  struct Variant {
    std::string label;
    SchedulerKind scheduler;
    bool buffer_aware;
  };
  const std::vector<Variant> variants = {
      {"EFTF + minimum-flow admission (paper)", SchedulerKind::kEftf, false},
      {"intermittent + minimum-flow admission", SchedulerKind::kIntermittent,
       false},
      {"intermittent + buffer-aware admission", SchedulerKind::kIntermittent,
       true},
  };

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    for (double load : {1.0, 1.2}) {
      std::vector<SimulationConfig> configs;
      for (const Variant& variant : variants) {
        SimulationConfig config = bench::base_config(system);
        config.zipf_theta = 0.271;
        config.load_factor = load;
        config.client.staging_fraction = 0.2;
        config.client.receive_bandwidth = 30.0;
        config.scheduler = variant.scheduler;
        config.admission.buffer_aware = variant.buffer_aware;
        configs.push_back(config);
      }
      ExperimentRunner runner;
      const auto points = runner.run_sweep(configs, scale.trials);

      TablePrinter table(
          {"policy", "utilization", "rejection", "underflow events"});
      for (std::size_t i = 0; i < variants.size(); ++i) {
        double underflows = 0.0;
        for (const TrialResult& trial : points[i].trials) {
          underflows += static_cast<double>(trial.underflow_events);
        }
        underflows /= static_cast<double>(points[i].trials.size());
        table.add_row({variants[i].label, format_mean_ci(points[i].utilization),
                       format_mean_ci(points[i].rejection_ratio),
                       TablePrinter::num(underflows, 1)});
      }
      std::cout << "-- " << system.name << " system, offered load "
                << TablePrinter::pct(load, 0) << " --\n";
      table.print(std::cout);
      std::cout << "\n";
    }
  }
  return 0;
}
