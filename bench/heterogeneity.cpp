/// \file heterogeneity.cpp
/// \brief E8 / paper §4.6: server heterogeneity.
///
/// Clusters of 5, 10 and 20 servers with bandwidth or storage spread across
/// servers at equal aggregate capacity (coefficient of variation 0, 0.25,
/// 0.5). Expected shape: heterogeneity hurts more on the small cluster;
/// bandwidth heterogeneity matters more than storage heterogeneity (whose
/// effect is within noise).

#include <cmath>

#include "bench_common.h"

namespace {

/// Linear ramp profile with the requested coefficient of variation and
/// mean 1 (uniform spacing around the mean keeps totals fixed).
std::vector<double> ramp_profile(int n, double cv) {
  // For x_i = 1 + a*(2i/(n-1) - 1), the CV is a/sqrt(3) for large n; solve
  // exactly from the discrete variance instead.
  std::vector<double> profile(static_cast<std::size_t>(n), 1.0);
  if (cv <= 0.0 || n < 2) return profile;
  double variance_unit = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = 2.0 * i / (n - 1.0) - 1.0;  // in [-1, 1]
    variance_unit += u * u;
  }
  variance_unit /= n;
  const double a = cv / std::sqrt(variance_unit);
  for (int i = 0; i < n; ++i) {
    const double u = 2.0 * i / (n - 1.0) - 1.0;
    profile[static_cast<std::size_t>(i)] = 1.0 + a * u;
  }
  return profile;
}

}  // namespace

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E8 / heterogeneity",
                            "bandwidth vs storage heterogeneity across cluster sizes");

  const BenchScale scale = bench_scale();
  const std::vector<int> cluster_sizes = {5, 10, 20};
  const std::vector<double> cvs = {0.0, 0.25, 0.5};
  const double theta = 0.271;

  for (const char* dimension : {"bandwidth", "storage"}) {
    std::cout << "-- " << dimension
              << " heterogeneity (equal totals, theta = " << theta
              << ", migration + 20% staging) --\n";
    TablePrinter table({"servers", "cv = 0.00", "cv = 0.25", "cv = 0.50"});
    for (int n : cluster_sizes) {
      std::vector<SimulationConfig> configs;
      for (double cv : cvs) {
        // Mid-size reference cluster: keep aggregate capacity comparable to
        // the paper's small system scaled by server count.
        SystemConfig system = SystemConfig::small_system();
        system.name = "hetero";
        system.num_servers = n;
        system.num_videos = 60 * static_cast<std::size_t>(n);
        SimulationConfig config = bench::base_config(system);
        config.zipf_theta = theta;
        config.client.staging_fraction = 0.2;
        config.client.receive_bandwidth = 30.0;
        config.admission.migration.enabled = true;
        config.admission.migration.max_hops_per_request = 1;
        const auto profile = ramp_profile(n, cv);
        if (std::string(dimension) == "bandwidth") {
          config.system.bandwidth_profile = profile;
        } else {
          config.system.storage_profile = profile;
        }
        configs.push_back(config);
      }
      ExperimentRunner runner;
      const auto points = runner.run_sweep(configs, scale.trials);
      table.add_row({std::to_string(n), format_mean_ci(points[0].utilization),
                     format_mean_ci(points[1].utilization),
                     format_mean_ci(points[2].utilization)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
