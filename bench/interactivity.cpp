/// \file interactivity.cpp
/// \brief E15 / paper §6 extension: VCR pause/resume under semi-continuous
/// transmission.
///
/// Theorem 1's optimality proof assumes videos are never paused. This bench
/// measures how the full system (even placement, 20% staging, DRM) degrades
/// as viewers pause more aggressively: paused viewers hold their admission
/// slot longer (their deadline shifts right), but their staging buffers
/// keep filling while paused, which softens the cost.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E15 / interactivity",
                            "viewer pause/resume vs utilization");

  const BenchScale scale = bench_scale();
  struct Level {
    std::string label;
    double pauses_per_hour;
    double mean_pause_s;
  };
  const std::vector<Level> levels = {
      {"no pauses", 0.0, 0.0},
      {"light (1/h x 60 s)", 1.0, 60.0},
      {"moderate (4/h x 180 s)", 4.0, 180.0},
      {"heavy (12/h x 300 s)", 12.0, 300.0},
  };

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    std::vector<SimulationConfig> configs;
    for (const Level& level : levels) {
      SimulationConfig config = bench::base_config(system);
      config.zipf_theta = 0.271;
      config.client.staging_fraction = 0.2;
      config.client.receive_bandwidth = 30.0;
      config.admission.migration.enabled = true;
      config.admission.migration.max_hops_per_request = 1;
      if (level.pauses_per_hour > 0.0) {
        config.interactivity.enabled = true;
        config.interactivity.pauses_per_hour = level.pauses_per_hour;
        config.interactivity.mean_pause_duration = level.mean_pause_s;
      }
      configs.push_back(config);
    }
    ExperimentRunner runner;
    const auto points = runner.run_sweep(configs, scale.trials);

    TablePrinter table({"pause behaviour", "utilization", "rejection"});
    for (std::size_t i = 0; i < levels.size(); ++i) {
      table.add_row({levels[i].label, format_mean_ci(points[i].utilization),
                     format_mean_ci(points[i].rejection_ratio)});
    }
    std::cout << "-- " << system.name
              << " system (even placement, 20% staging, DRM) --\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
