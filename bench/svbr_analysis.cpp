/// \file svbr_analysis.cpp
/// \brief E9 / paper full version [5]: utilization vs the server-to-view
/// bandwidth ratio, analytical (Erlang-B) vs simulated.
///
/// A one-server system without staging or migration is an M/G/c/c loss
/// system, so the simulator must reproduce the Erlang-B curve — the same
/// cross-validation the authors use to argue their simulator is accurate.

#include <cmath>

#include "bench_common.h"

#include "vodsim/analysis/svbr.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E9 / SVBR analysis",
                            "analytical vs simulated utilization, one server");

  const BenchScale scale = bench_scale();
  const std::vector<int> svbrs = {5, 10, 20, 33, 50, 100};

  std::vector<SimulationConfig> configs;
  for (int svbr : svbrs) {
    SimulationConfig config;
    config.system.name = "svbr";
    config.system.num_servers = 1;
    config.system.view_bandwidth = 3.0;
    config.system.server_bandwidth = 3.0 * svbr;
    config.system.server_storage = gigabytes(10000);  // storage not the topic
    config.system.num_videos = 50;
    config.system.avg_copies = 1.0;
    config.system.video_min_duration = minutes(10);
    config.system.video_max_duration = minutes(30);
    config.zipf_theta = 1.0;  // uniform: popularity is irrelevant on 1 server
    config.duration = hours(scale.sim_hours * 4);  // cheap system: run longer
    config.warmup = hours(scale.warmup_hours);
    configs.push_back(config);
  }
  ExperimentRunner runner;
  const auto points = runner.run_sweep(configs, scale.trials);

  TablePrinter table({"SVBR", "analytical (Erlang-B)", "simulated", "abs error"});
  for (std::size_t i = 0; i < svbrs.size(); ++i) {
    const double analytical = analytical_utilization(svbrs[i], 1.0);
    const double simulated = points[i].utilization.mean();
    table.add_row({std::to_string(svbrs[i]), TablePrinter::num(analytical),
                   format_mean_ci(points[i].utilization),
                   TablePrinter::num(std::fabs(simulated - analytical))});
  }
  table.print(std::cout);
  std::cout << "\nUtilization climbs toward 1 as the SVBR grows: with "
               "technology-typical ratios it is hard to make the system "
               "perform poorly (paper section 3.2).\n";
  return 0;
}
