/// \file fault_tolerance.cpp
/// \brief E12 / paper §3.1 extension: DRM as a fault-tolerance mechanism.
///
/// Server failures arrive per-server (exponential MTBF/MTTR). Without
/// recovery, every active stream on a failed node is dropped mid-playback;
/// with DRM-based recovery, streams migrate to other replica holders when
/// room exists. We report drops per 1000 accepted streams and utilization
/// across failure intensities.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E12 / fault tolerance",
                            "stream survival under server failures");

  const BenchScale scale = bench_scale();
  struct Intensity {
    std::string label;
    double mtbf_hours;
    double mttr_hours;
  };
  const std::vector<Intensity> intensities = {
      {"rare (MTBF 200 h)", 200.0, 2.0},
      {"occasional (MTBF 50 h)", 50.0, 2.0},
      {"frequent (MTBF 10 h)", 10.0, 1.0},
  };

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    std::vector<SimulationConfig> configs;
    for (const Intensity& intensity : intensities) {
      for (bool recover : {false, true}) {
        SimulationConfig config = bench::base_config(system);
        config.zipf_theta = 0.271;
        config.client.staging_fraction = 0.2;
        config.client.receive_bandwidth = 30.0;
        config.admission.migration.enabled = true;
        config.admission.migration.max_hops_per_request = 1;
        config.failure.enabled = true;
        config.failure.mean_time_between_failures = hours(intensity.mtbf_hours);
        config.failure.mean_time_to_repair = hours(intensity.mttr_hours);
        config.failure.recover_via_migration = recover;
        configs.push_back(config);
      }
    }
    ExperimentRunner runner;
    const auto points = runner.run_sweep(configs, scale.trials);

    TablePrinter table({"failure intensity", "recovery", "drops / 1k accepts",
                        "utilization"});
    for (std::size_t i = 0; i < intensities.size(); ++i) {
      for (int r = 0; r < 2; ++r) {
        const ExperimentPoint& point = points[i * 2 + static_cast<std::size_t>(r)];
        double drops_per_k = 0.0;
        double accepted = 0.0;
        for (const TrialResult& trial : point.trials) {
          drops_per_k += static_cast<double>(trial.drops);
          accepted += static_cast<double>(trial.accepts);
        }
        drops_per_k = accepted > 0.0 ? 1000.0 * drops_per_k / accepted : 0.0;
        table.add_row({intensities[i].label, r ? "DRM migration" : "drop",
                       TablePrinter::num(drops_per_k, 2),
                       format_mean_ci(point.utilization)});
      }
    }
    std::cout << "-- " << system.name << " system --\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
