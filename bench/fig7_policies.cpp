/// \file fig7_policies.cpp
/// \brief E5 / paper Figure 7: integrated policy comparison P1..P8.
///
/// The full cross of {even, predictive} placement x {no migration,
/// migration (chain 1, 1 hop)} x {0%, 20%} staging, receive cap 30 Mb/s,
/// both systems, theta sweep.
///
/// Expected shape (paper §4.5): for theta in [0, 1], P4 (even + both
/// mechanisms) performs comparably to P8 (perfect prediction + both) and
/// beats the others — placement knowledge is unnecessary. For negative
/// theta the allocation scheme dominates and P5-P8 win.

#include "bench_common.h"

#include "vodsim/engine/policy_matrix.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E5 / Figure 7",
                            "semi-continuous transmission: policies P1..P8");

  std::cout << "policy key:\n";
  for (const PolicySpec& policy : figure6_policies()) {
    std::cout << "  " << policy.label << " = " << policy.description() << "\n";
  }
  std::cout << "\n";

  std::vector<std::string> labels;
  for (const PolicySpec& policy : figure6_policies()) labels.push_back(policy.label);

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    bench::run_theta_sweep(
        system.name + " system", labels, [&](std::size_t series, double theta) {
          SimulationConfig config = bench::base_config(system);
          config.zipf_theta = theta;
          config.client.receive_bandwidth = 30.0;
          return apply_policy(config, figure6_policies()[series]);
        });
  }
  return 0;
}
