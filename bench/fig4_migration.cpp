/// \file fig4_migration.cpp
/// \brief E2 / paper Figure 4: the effect of dynamic request migration.
///
/// Even placement, staging only sufficient for migration itself (0%
/// buffers), migration chain length 1. Series: no migration, one hop per
/// request, unlimited hops per request — for the large and small systems
/// across the Zipf-theta sweep.
///
/// Expected shape (paper §4.2): migration lifts utilization across
/// theta in [0, 1]; hops = 1 is nearly indistinguishable from unlimited
/// hops; all even-placement curves collapse at strongly negative theta.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E2 / Figure 4", "effect of dynamic request migration");

  const std::vector<std::string> labels = {"no migration", "hops/request = 1",
                                           "unlimited hops"};
  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    bench::run_theta_sweep(
        system.name + " system", labels, [&](std::size_t series, double theta) {
          SimulationConfig config = bench::base_config(system);
          config.zipf_theta = theta;
          config.placement.kind = PlacementKind::kEven;
          config.admission.migration.enabled = series != 0;
          config.admission.migration.max_chain_length = 1;
          config.admission.migration.max_hops_per_request =
              series == 1 ? 1 : -1;
          return config;
        });
  }
  return 0;
}
