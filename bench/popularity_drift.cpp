/// \file popularity_drift.cpp
/// \brief E13 / paper §1 & §6 extension: obliviousness to demand drift.
///
/// The popular head of the catalog rotates over time. A predictive
/// placement computed at t = 0 decays as its popularity estimates go stale;
/// even allocation never knew and never cares. This is the operational
/// payoff of the paper's "one can be oblivious to request pattern
/// variations during placement".

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E13 / popularity drift",
                            "even vs predictive placement under demand drift");

  const BenchScale scale = bench_scale();
  const double theta = 0.0;  // strong enough skew that placement could matter
  const std::vector<double> drift_periods_hours = {0.0, 20.0, 10.0, 5.0};

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    std::vector<SimulationConfig> configs;
    for (double period : drift_periods_hours) {
      for (PlacementKind kind : {PlacementKind::kEven, PlacementKind::kPredictive}) {
        SimulationConfig config = bench::base_config(system);
        config.zipf_theta = theta;
        config.placement.kind = kind;
        config.client.staging_fraction = 0.2;
        config.client.receive_bandwidth = 30.0;
        config.admission.migration.enabled = true;
        config.admission.migration.max_hops_per_request = 1;
        if (period > 0.0) {
          config.drift.enabled = true;
          config.drift.period = hours(period);
          config.drift.step =
              std::max<std::size_t>(1, config.system.num_videos / 10);
        }
        configs.push_back(config);
      }
    }
    ExperimentRunner runner;
    const auto points = runner.run_sweep(configs, scale.trials);

    TablePrinter table({"drift", "even placement", "predictive (t=0 snapshot)"});
    for (std::size_t i = 0; i < drift_periods_hours.size(); ++i) {
      const double period = drift_periods_hours[i];
      table.add_row({period == 0.0 ? std::string("none")
                                   : "head rotates every " +
                                         TablePrinter::num(period, 0) + " h",
                     format_mean_ci(points[i * 2].utilization),
                     format_mean_ci(points[i * 2 + 1].utilization)});
    }
    std::cout << "-- " << system.name << " system (theta = " << theta
              << ", migration + 20% staging) --\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
