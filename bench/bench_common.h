#pragma once

/// \file bench_common.h
/// \brief Shared plumbing for the figure/table reproduction benches.
///
/// Every bench prints the series the corresponding paper artifact reports,
/// as mean ± 95% CI over the configured number of trials. Scale is
/// controlled by the environment (see util/env.h): the default is a reduced
/// grid for a 1-core box; REPRO_FULL=1 restores paper scale (5 trials x
/// 1000 simulated hours).

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "vodsim/engine/experiment.h"
#include "vodsim/util/env.h"
#include "vodsim/util/table.h"

namespace vodsim::bench {

/// Zipf skew grid matching the paper's x-axis (theta from -1.5 to 1).
inline std::vector<double> theta_grid() {
  if (repro_full()) {
    return {-1.5, -1.25, -1.0, -0.75, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0};
  }
  return {-1.5, -1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0};
}

/// Base simulation config for a bench: given system, bench-scale horizon.
inline SimulationConfig base_config(const SystemConfig& system) {
  const BenchScale scale = bench_scale();
  SimulationConfig config;
  config.system = system;
  config.duration = hours(scale.sim_hours);
  config.warmup = hours(scale.warmup_hours);
  return config;
}

inline void print_scale_banner(const std::string& experiment_id,
                               const std::string& title) {
  const BenchScale scale = bench_scale();
  std::cout << "=== " << experiment_id << ": " << title << " ===\n"
            << "scale: " << scale.trials << " trials x " << scale.sim_hours
            << " simulated hours"
            << (repro_full() ? " (paper scale)"
                             : " (reduced; set REPRO_FULL=1 for paper scale)")
            << "\n\n";
}

/// Runs |labels| series over the theta grid and prints one table per call.
/// \p make_config builds the config for (series index, theta).
inline void run_theta_sweep(
    const std::string& heading, const std::vector<std::string>& labels,
    const std::function<SimulationConfig(std::size_t, double)>& make_config) {
  const BenchScale scale = bench_scale();
  const std::vector<double> thetas = theta_grid();

  // Flatten (series x theta) into one paired sweep.
  std::vector<SimulationConfig> configs;
  configs.reserve(labels.size() * thetas.size());
  for (std::size_t s = 0; s < labels.size(); ++s) {
    for (double theta : thetas) configs.push_back(make_config(s, theta));
  }
  ExperimentRunner runner;
  const auto points = runner.run_sweep(configs, scale.trials);

  std::vector<std::string> headers = {"zipf theta"};
  for (const std::string& label : labels) headers.push_back(label);
  TablePrinter table(headers);
  for (std::size_t t = 0; t < thetas.size(); ++t) {
    std::vector<std::string> row = {TablePrinter::num(thetas[t], 2)};
    for (std::size_t s = 0; s < labels.size(); ++s) {
      row.push_back(format_mean_ci(points[s * thetas.size() + t].utilization));
    }
    table.add_row(std::move(row));
  }
  std::cout << "-- " << heading << " (bandwidth utilization) --\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace vodsim::bench
