#!/bin/sh
# PR8 headline: 100 servers x 15000 Mb/s, 1.5 Mb/s views => 1M concurrent
# streams at full load; 1200 s simulated, fast-math, intermittent +
# buffer-aware. One run per (shards, threads) point; wall seconds printed.
set -e
cd /root/repo/build
run() {
  label="$1"; shards="$2"; threads="$3"
  echo "=== $label (shards=$shards threads=$threads) ==="
  start=$(date +%s)
  ./examples/vodsim_cli \
    --system custom --servers 100 --bandwidth 15000 \
    --view-bw 1.5 --receive-bw 4.5 --staging 0.25 \
    --scheduler intermittent --buffer-aware true --fast-math true \
    --load 1.0 --hours 0.3333 --warmup-hours 0 --seed 42 \
    --shards "$shards" --shard-threads "$threads" 2>&1
  end=$(date +%s)
  echo "WALL_SECONDS $label $((end - start))"
  echo "=== end $label ==="
}
run baseline 1 1
run sharded-t1 100 1
run sharded-t2 100 2
run sharded-t4 100 4
echo ALL_RUNS_DONE
