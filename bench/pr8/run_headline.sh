#!/bin/sh
# PR8 headline: 100 servers x 15000 Mb/s, 1.5 Mb/s views => 1M concurrent
# streams at full load; 1200 s simulated, fast-math, intermittent +
# buffer-aware. One run per (shards, threads) point; wall seconds printed.
#
# Hardened after the first capture attempt truncated: output now streams
# through tee into $HEADLINE_LOG line by line (a killed run keeps every
# completed line instead of losing the pipe buffer), the binary is
# overridable (VODSIM_CLI=/path/to/old/vodsim_cli re-measures a snapshot
# binary for cross-PR comparisons), and the point list and simulated hours
# are env knobs — near the 1M-stream mark each full-duration point costs
# on the order of hours of wall time on a single-core host, which is what
# killed the original attempt mid-baseline.
set -e
cd /root/repo/build

CLI="${VODSIM_CLI:-./examples/vodsim_cli}"
LOG="${HEADLINE_LOG:-/root/repo/bench/pr8/headline.log}"
HOURS="${HEADLINE_HOURS:-0.3333}"
POINTS="${HEADLINE_POINTS:-baseline sharded-t1 sharded-t2 sharded-t4}"

: > "$LOG"
note() { echo "$@" | tee -a "$LOG"; }
note "binary=$CLI hours=$HOURS points=[$POINTS]"

run() {
  label="$1"; shards="$2"; threads="$3"
  case " $POINTS " in *" $label "*) ;; *) return 0 ;; esac
  note "=== $label (shards=$shards threads=$threads) ==="
  start=$(date +%s)
  "$CLI" \
    --system custom --servers 100 --bandwidth 15000 \
    --view-bw 1.5 --receive-bw 4.5 --staging 0.25 \
    --scheduler intermittent --buffer-aware true --fast-math true \
    --load 1.0 --hours "$HOURS" --warmup-hours 0 --seed 42 \
    --shards "$shards" --shard-threads "$threads" 2>&1 | tee -a "$LOG"
  end=$(date +%s)
  note "WALL_SECONDS $label $((end - start))"
  note "=== end $label ==="
}
run baseline 1 1
run sharded-t1 100 1
run sharded-t2 100 2
run sharded-t4 100 4
note ALL_RUNS_DONE
