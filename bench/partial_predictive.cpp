/// \file partial_predictive.cpp
/// \brief E7 / paper §4.4: the partial predictive allocation.
///
/// Under highly skewed demand (negative theta), even allocation fails
/// because the popular head has too few copies. The paper's point: you do
/// not need to know *how* popular titles are, only *which* ones are likely
/// popular — a mildly skewed allocation plus migration and staging matches
/// the perfect predictive scheme. Series: even, partial predictive,
/// predictive, BSR (published baseline), all with migration + 20% staging.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E7 / partial predictive",
                            "how much popularity knowledge does placement need?");

  const std::vector<PlacementKind> kinds = {
      PlacementKind::kEven, PlacementKind::kPartialPredictive,
      PlacementKind::kPredictive, PlacementKind::kBsr};
  const std::vector<std::string> labels = {"even", "partial predictive",
                                           "predictive", "bsr"};

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    bench::run_theta_sweep(
        system.name + " system (migration + 20% staging)", labels,
        [&](std::size_t series, double theta) {
          SimulationConfig config = bench::base_config(system);
          config.zipf_theta = theta;
          config.placement.kind = kinds[series];
          config.client.staging_fraction = 0.2;
          config.client.receive_bandwidth = 30.0;
          config.admission.migration.enabled = true;
          config.admission.migration.max_hops_per_request = 1;
          return config;
        });
  }
  return 0;
}
