/// \file fig5_staging.cpp
/// \brief E3 / paper Figure 5: the effect of client staging.
///
/// Even placement, NO migration, client receive bandwidth capped at
/// 30 Mb/s. Series: staging buffers of 0%, 2%, 20% and 100% of the average
/// video size, for both systems across the Zipf-theta sweep.
///
/// Expected shape (paper §4.3): 20% captures almost all of 100%'s benefit;
/// gains are larger on the small system (smaller SVBR leaves more room for
/// smoothing to help).

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E3 / Figure 5", "effect of client staging");

  const std::vector<double> buffers = {0.0, 0.02, 0.20, 1.00};
  const std::vector<std::string> labels = {"0% buffer", "2% buffer", "20% buffer",
                                           "100% buffer"};
  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    bench::run_theta_sweep(
        system.name + " system", labels, [&](std::size_t series, double theta) {
          SimulationConfig config = bench::base_config(system);
          config.zipf_theta = theta;
          config.placement.kind = PlacementKind::kEven;
          config.client.staging_fraction = buffers[series];
          config.client.receive_bandwidth = 30.0;  // paper's client cap
          return config;
        });
  }
  return 0;
}
