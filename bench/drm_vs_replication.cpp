/// \file drm_vs_replication.cpp
/// \brief E14 / paper §3.1 comparison: DRM vs dynamic replication.
///
/// The paper proposes DRM precisely because "more resource intensive
/// solutions perform dynamic replication". This bench quantifies that
/// trade: at moderate skew DRM alone suffices (replication only burns
/// bandwidth); at extreme skew (negative theta, even placement) replication
/// is the only mechanism that can fix the copy shortage, and the two
/// compose.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E14 / DRM vs dynamic replication",
                            "migration, replication, or both?");

  struct Variant {
    std::string label;
    bool drm;
    bool replication;
  };
  const std::vector<Variant> variants = {
      {"neither", false, false},
      {"DRM only", true, false},
      {"replication only", false, true},
      {"DRM + replication", true, true},
  };
  std::vector<std::string> labels;
  for (const Variant& variant : variants) labels.push_back(variant.label);

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    bench::run_theta_sweep(
        system.name + " system (even placement, 20% staging)", labels,
        [&](std::size_t series, double theta) {
          SimulationConfig config = bench::base_config(system);
          config.zipf_theta = theta;
          config.placement.kind = PlacementKind::kEven;
          config.client.staging_fraction = 0.2;
          config.client.receive_bandwidth = 30.0;
          config.admission.migration.enabled = variants[series].drm;
          config.admission.migration.max_hops_per_request = 1;
          config.replication.enabled = variants[series].replication;
          config.replication.rejection_threshold = 5;
          config.replication.window = 600.0;
          config.replication.transfer_bandwidth = 30.0;
          config.replication.max_concurrent = 2;
          return config;
        });
  }
  return 0;
}
