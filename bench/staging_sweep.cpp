/// \file staging_sweep.cpp
/// \brief E6 / paper §4.3 claim: a 20% staging buffer is near-optimal.
///
/// Fine-grained sweep of the staging fraction at fixed skew on both
/// systems, no migration, receive cap 30 Mb/s. The knee of the curve should
/// sit at roughly 20% of the average video size — the paper's headline
/// provisioning guideline.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E6 / staging sweep",
                            "how much client disk is worth allocating?");

  const std::vector<double> fractions = {0.0,  0.01, 0.02, 0.05, 0.10,
                                         0.15, 0.20, 0.30, 0.50, 1.00};
  const BenchScale scale = bench_scale();
  const double theta = 0.271;

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    std::vector<SimulationConfig> configs;
    for (double fraction : fractions) {
      SimulationConfig config = bench::base_config(system);
      config.zipf_theta = theta;
      config.placement.kind = PlacementKind::kEven;
      config.client.staging_fraction = fraction;
      config.client.receive_bandwidth = 30.0;
      configs.push_back(config);
    }
    ExperimentRunner runner;
    const auto points = runner.run_sweep(configs, scale.trials);

    // Gain captured relative to the 0% -> 100% span.
    const double floor_u = points.front().utilization.mean();
    const double ceil_u = points.back().utilization.mean();
    TablePrinter table({"staging buffer", "utilization", "benefit captured"});
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      const double mean = points[i].utilization.mean();
      const double captured =
          ceil_u > floor_u ? (mean - floor_u) / (ceil_u - floor_u) : 1.0;
      table.add_row({TablePrinter::pct(fractions[i], 0),
                     format_mean_ci(points[i].utilization),
                     TablePrinter::pct(captured, 1)});
    }
    std::cout << "-- " << system.name << " system (theta = " << theta << ") --\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
