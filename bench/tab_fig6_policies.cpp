/// \file tab_fig6_policies.cpp
/// \brief E4 / paper Figure 6 (table): the policy matrix P1..P8, plus a
/// one-point measurement of each policy at the paper's canonical skew
/// (theta = 0.271) on both systems.

#include <iostream>

#include "bench_common.h"
#include "vodsim/engine/policy_matrix.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E4 / Figure 6", "policies evaluated");

  TablePrinter matrix(
      {"policy", "allocation", "migration", "client staging"});
  for (const PolicySpec& policy : figure6_policies()) {
    matrix.add_row({policy.label, to_string(policy.placement),
                    policy.migration ? "migr" : "no migr",
                    TablePrinter::pct(policy.staging_fraction, 0) + " buffer"});
  }
  matrix.print(std::cout);

  const BenchScale scale = bench_scale();
  std::cout << "\nutilization at theta = 0.271 (the canonical Zipf skew of "
               "prior VoD studies):\n\n";
  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    std::vector<SimulationConfig> configs;
    for (const PolicySpec& policy : figure6_policies()) {
      SimulationConfig config = bench::base_config(system);
      config.zipf_theta = 0.271;
      config.client.receive_bandwidth = 30.0;
      configs.push_back(apply_policy(config, policy));
    }
    ExperimentRunner runner;
    const auto points = runner.run_sweep(configs, scale.trials);

    TablePrinter table({"policy", "utilization", "rejection", "migr/arrival"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.add_row({figure6_policies()[i].label,
                     format_mean_ci(points[i].utilization),
                     format_mean_ci(points[i].rejection_ratio),
                     TablePrinter::num(points[i].migrations_per_arrival.mean(), 4)});
    }
    std::cout << "-- " << system.name << " system --\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
