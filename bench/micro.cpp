/// \file micro.cpp
/// \brief M1: microbenchmarks of the simulator's hot paths
/// (google-benchmark). These guard the performance properties that make
/// paper-scale runs (5 x 1000 h) cheap: O(log n) event handling, near-linear
/// EFTF recomputation, O(log n) Zipf sampling.

#include <benchmark/benchmark.h>

#include <memory>

#include "vodsim/des/event_queue.h"
#include "vodsim/des/simulator.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/sched/eftf.h"
#include "vodsim/util/rng.h"
#include "vodsim/workload/zipf.h"

namespace {

using namespace vodsim;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      queue.schedule(rng.uniform(0.0, 1000.0), [](Seconds) {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().first);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // The engine's dominant pattern: schedule a predicted event, cancel it,
  // reschedule.
  Rng rng(2);
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < 10000; ++i) {
      const EventId id = queue.schedule(rng.uniform(0.0, 1000.0), [](Seconds) {});
      queue.cancel(id);
    }
    benchmark::DoNotOptimize(queue.empty());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueCancelChurn);

void BM_EftfAllocate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Video video;
  video.id = 0;
  video.duration = 3600.0;
  video.view_bandwidth = 3.0;
  ClientProfile client{1000.0, 30.0};
  std::vector<std::unique_ptr<Request>> owner;
  std::vector<Request*> active;
  for (std::size_t i = 0; i < n; ++i) {
    owner.push_back(std::make_unique<Request>(static_cast<RequestId>(i), video,
                                              0.0, client));
    owner.back()->begin_streaming(0.0, 0);
    owner.back()->set_allocation(0.0, 3.0);
    owner.back()->advance(rng.uniform(1.0, 600.0));  // spread remaining data
    active.push_back(owner.back().get());
  }
  EftfScheduler scheduler;
  std::vector<Mbps> rates;
  for (auto _ : state) {
    scheduler.allocate(600.0, 3.0 * n + 60.0, active, rates);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EftfAllocate)->Arg(10)->Arg(33)->Arg(100)->Arg(300);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 0.271);
  Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(200)->Arg(2000);

void BM_EndToEndSmallSystemHour(benchmark::State& state) {
  // Whole-engine throughput: one simulated hour of the paper's small
  // system per iteration, with migration and staging enabled.
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    config.zipf_theta = 0.271;
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.admission.migration.enabled = true;
    config.duration = hours(1);
    config.warmup = 0.0;
    config.seed = seed++;
    VodSimulation simulation(config);
    simulation.run();
    events += simulation.simulator().executed_count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndSmallSystemHour)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
