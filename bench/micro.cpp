/// \file micro.cpp
/// \brief M1: microbenchmarks of the simulator's hot paths
/// (google-benchmark). These guard the performance properties that make
/// paper-scale runs (5 x 1000 h) cheap: O(log n) event handling, near-linear
/// EFTF recomputation, O(log n) Zipf sampling, and — after the
/// allocation-free hot-path rework — zero steady-state heap allocations
/// (reported as the `allocs_per_op` counter).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>

#include "vodsim/des/event_queue.h"
#include "vodsim/des/simulator.h"
#include "vodsim/engine/experiment.h"
#include "vodsim/engine/policy_matrix.h"
#include "vodsim/engine/sweep_context.h"
#include "vodsim/engine/vod_simulation.h"
#include "vodsim/obs/trace.h"
#include "vodsim/sched/eftf.h"
#include "vodsim/sched/finish_order.h"
#include "vodsim/util/rng.h"
#include "vodsim/workload/zipf.h"

// --- global allocation instrumentation --------------------------------------
// Every global operator new bumps a counter; benchmarks report the delta per
// iteration as `allocs_per_op`. This is how the "steady-state loop performs
// zero heap allocations" property is demonstrated rather than asserted.

static std::atomic<std::uint64_t> g_heap_allocs{0};

static void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace vodsim;

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

void report_allocs_per_op(benchmark::State& state, std::uint64_t allocs_before,
                          std::uint64_t ops_per_iteration) {
  const auto delta = static_cast<double>(heap_allocs() - allocs_before);
  const auto ops = static_cast<double>(state.iterations()) *
                   static_cast<double>(ops_per_iteration);
  state.counters["allocs_per_op"] = benchmark::Counter(ops > 0 ? delta / ops : 0);
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      queue.schedule(rng.uniform(0.0, 1000.0), [](Seconds) {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().first);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // The engine's dominant pattern: schedule a predicted event, cancel it,
  // reschedule. Fresh queue per iteration (includes construction cost).
  Rng rng(2);
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < 10000; ++i) {
      const EventId id = queue.schedule(rng.uniform(0.0, 1000.0), [](Seconds) {});
      queue.cancel(id);
    }
    benchmark::DoNotOptimize(queue.empty());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueCancelChurn);

void BM_EventQueueSteadyChurn(benchmark::State& state) {
  // Steady-state churn against a *persistent* queue holding a realistic
  // pending population: each op cancels one live predicted event and
  // schedules its replacement, exactly the reallocation pattern of
  // VodSimulation::reschedule_predicted_events. After warmup this must not
  // allocate at all (allocs_per_op ~ 0): the slab reuses slots and eager
  // cancel removes heap entries in place.
  const std::size_t population = 4096;
  EventQueue queue;
  Rng rng(7);
  std::vector<EventId> pending;
  pending.reserve(population);
  Seconds t = 0.0;
  for (std::size_t i = 0; i < population; ++i) {
    pending.push_back(queue.schedule(t + rng.uniform(0.0, 100.0), [](Seconds) {}));
  }
  // Warm the churn path (grows the heap and slab to their steady
  // footprints) before counting allocations.
  std::size_t cursor = 0;
  for (int i = 0; i < 200000; ++i) {
    queue.cancel(pending[cursor]);
    pending[cursor] = queue.schedule(t + rng.uniform(0.0, 100.0), [](Seconds) {});
    cursor = (cursor + 1) % population;
  }
  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    queue.cancel(pending[cursor]);
    pending[cursor] = queue.schedule(t + rng.uniform(0.0, 100.0), [](Seconds) {});
    cursor = (cursor + 1) % population;
  }
  state.SetItemsProcessed(state.iterations());
  report_allocs_per_op(state, allocs_before, 1);
}
BENCHMARK(BM_EventQueueSteadyChurn);

void BM_EventQueueRetimeChurn(benchmark::State& state) {
  // Same persistent population as BM_EventQueueSteadyChurn, but each op
  // *retimes* a live predicted event in place (EventQueue::reschedule)
  // instead of cancelling and scheduling a replacement. This is what
  // VodSimulation::reschedule_predicted_events does when a prediction
  // merely moves: no dead entry left in the heap, no slab slot turnover,
  // one sift instead of a lazy-pop plus push.
  const std::size_t population = 4096;
  EventQueue queue;
  Rng rng(7);
  std::vector<EventId> pending;
  pending.reserve(population);
  Seconds t = 0.0;
  for (std::size_t i = 0; i < population; ++i) {
    pending.push_back(queue.schedule(t + rng.uniform(0.0, 100.0), [](Seconds) {}));
  }
  std::size_t cursor = 0;
  for (int i = 0; i < 200000; ++i) {  // warm, as in the churn benchmark
    queue.reschedule(pending[cursor], t + rng.uniform(0.0, 100.0));
    cursor = (cursor + 1) % population;
  }
  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    queue.reschedule(pending[cursor], t + rng.uniform(0.0, 100.0));
    cursor = (cursor + 1) % population;
  }
  state.SetItemsProcessed(state.iterations());
  report_allocs_per_op(state, allocs_before, 1);
}
BENCHMARK(BM_EventQueueRetimeChurn);

void BM_EftfAllocate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Video video;
  video.id = 0;
  video.duration = 3600.0;
  video.view_bandwidth = 3.0;
  ClientProfile client{1000.0, 30.0};
  std::vector<std::unique_ptr<Request>> owner;
  std::vector<Request*> active;
  for (std::size_t i = 0; i < n; ++i) {
    owner.push_back(std::make_unique<Request>(static_cast<RequestId>(i), video,
                                              0.0, client));
    owner.back()->begin_streaming(0.0, 0);
    owner.back()->set_allocation(0.0, 3.0);
    owner.back()->advance(rng.uniform(1.0, 600.0));  // spread remaining data
    active.push_back(owner.back().get());
  }
  EftfScheduler scheduler;
  std::vector<Mbps> rates;
  AllocationScratch scratch;
  scheduler.allocate(600.0, 3.0 * static_cast<double>(n) + 60.0, active, rates,
                     scratch);
  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    scheduler.allocate(600.0, 3.0 * static_cast<double>(n) + 60.0, active, rates,
                       scratch);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  report_allocs_per_op(state, allocs_before, 1);
}
BENCHMARK(BM_EftfAllocate)->Arg(10)->Arg(33)->Arg(100)->Arg(300);

void BM_RecomputeServer(benchmark::State& state) {
  // The engine's per-event hot loop (VodSimulation::recompute_server),
  // replicated through public APIs: advance every active request on a
  // server, reallocate with EFTF, and reschedule predicted events for
  // requests whose rate changed (exact-compare fast path). Arg 0 is the
  // active-stream count; arg 1 selects saturated (slack 0 — the paper's
  // interesting operating point, where the eligible sort is skipped) vs.
  // slack (workahead flowing).
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool saturated = state.range(1) != 0;
  Rng rng(5);
  Video video;
  video.id = 0;
  video.duration = 2.0 * 3600.0;
  video.view_bandwidth = 3.0;
  // 20% staging buffer of the video size, 30 Mb/s receive cap (fig5/fig7
  // client settings).
  ClientProfile client{0.2 * video.size(), 30.0};
  std::vector<std::unique_ptr<Request>> owner;
  std::vector<Request*> active;
  for (std::size_t i = 0; i < n; ++i) {
    owner.push_back(std::make_unique<Request>(static_cast<RequestId>(i), video,
                                              0.0, client));
    Request& request = *owner.back();
    request.begin_streaming(0.0, 0);
    request.set_allocation(0.0, 3.0);
    request.advance(rng.uniform(1.0, 600.0));
    request.active_index = i;  // cache seeding keys off this (finish_order.h)
    active.push_back(&request);
  }
  const Mbps capacity =
      saturated ? 3.0 * static_cast<double>(n) : 3.0 * static_cast<double>(n) + 60.0;
  EftfScheduler scheduler;
  EventQueue queue;
  std::vector<Mbps> rates;
  AllocationScratch scratch;
  SchedCache cache;
  Seconds now = 600.0;

  auto recompute = [&](Seconds t) {
    for (Request* request : active) request->advance(t);
    scheduler.allocate(t, capacity, active, rates, scratch, &cache);
    for (std::size_t i = 0; i < active.size(); ++i) {
      Request& request = *active[i];
      if (rates[i] == request.allocation()) continue;
      request.set_allocation(t, rates[i]);
      // Engine pattern (reschedule_predicted_events): retime live
      // predictions in place, fall back to cancel + schedule only when the
      // prediction appears or disappears.
      if (rates[i] > 0.0) {
        const Seconds when = t + request.remaining() / rates[i];
        if (!queue.reschedule(request.tx_complete_event, when)) {
          request.tx_complete_event = queue.schedule(when, [](Seconds) {});
        }
      } else {
        queue.cancel(request.tx_complete_event);
        request.tx_complete_event = kInvalidEventId;
      }
      const Mbps surplus = rates[i] - request.drain_rate(t);
      if (surplus > 1e-12 && !request.buffer_full()) {
        const Seconds when = t + request.buffer_headroom() / surplus;
        if (!queue.reschedule(request.buffer_full_event, when)) {
          request.buffer_full_event = queue.schedule(when, [](Seconds) {});
        }
      } else {
        queue.cancel(request.buffer_full_event);
        request.buffer_full_event = kInvalidEventId;
      }
    }
  };

  recompute(now);  // warm: initial allocations + predicted events
  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    now += 1e-4;  // small fluid step keeps the population in steady state
    recompute(now);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  report_allocs_per_op(state, allocs_before, 1);
}
BENCHMARK(BM_RecomputeServer)
    ->Args({33, 1})
    ->Args({33, 0})
    ->Args({100, 1})
    ->Args({100, 0})
    ->ArgNames({"streams", "saturated"});

void BM_RecomputeSingleStreamDelta(benchmark::State& state) {
  // The ordering kernel of recompute_server, isolated, under the engine's
  // dominant delta: one stream changed since the previous pass, everyone
  // else is where the last grant left them. incremental=1 is what ships —
  // sort_by_projected_finish repairing the previous grant order through a
  // warm SchedCache. incremental=0 is the pre-cache reference: a full
  // std::sort evaluating projected_finish inside the comparator.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool incremental = state.range(1) != 0;
  Rng rng(11);
  Video video;
  video.id = 0;
  video.duration = 2.0 * 3600.0;
  video.view_bandwidth = 3.0;
  ClientProfile client{0.2 * video.size(), 30.0};
  std::vector<std::unique_ptr<Request>> owner;
  std::vector<Request*> active;
  for (std::size_t i = 0; i < n; ++i) {
    owner.push_back(std::make_unique<Request>(static_cast<RequestId>(i), video,
                                              0.0, client));
    Request& request = *owner.back();
    request.begin_streaming(0.0, 0);
    request.set_allocation(0.0, 3.0);
    request.advance(rng.uniform(1.0, 600.0));
    request.active_index = i;
    active.push_back(&request);
  }
  AllocationScratch scratch;
  SchedCache cache;
  Seconds now = 600.0;
  std::size_t victim = 0;
  auto fill_order = [&] {
    scratch.order.clear();
    for (std::size_t i = 0; i < n; ++i) scratch.order.push_back(i);
  };
  fill_order();
  sched_detail::sort_by_projected_finish(now, true, active, scratch, &cache);

  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    now += 1e-3;
    active[victim]->advance(now);  // the single delta: one stream moved
    victim = (victim + 1) % n;
    fill_order();
    if (incremental) {
      sched_detail::sort_by_projected_finish(now, /*earliest_first=*/true,
                                             active, scratch, &cache);
    } else {
      std::sort(scratch.order.begin(), scratch.order.end(),
                [&](std::size_t a, std::size_t b) {
                  const Seconds fa = active[a]->projected_finish(now);
                  const Seconds fb = active[b]->projected_finish(now);
                  if (fa != fb) return fa < fb;
                  return active[a]->id() < active[b]->id();
                });
    }
    benchmark::DoNotOptimize(scratch.order.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  report_allocs_per_op(state, allocs_before, 1);
}
BENCHMARK(BM_RecomputeSingleStreamDelta)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({300, 0})
    ->Args({300, 1})
    ->ArgNames({"streams", "incremental"});

void BM_TraceRecorderRecord(benchmark::State& state) {
  // Cost of one enabled-path trace emission: a bounds-masked store into the
  // preallocated ring. Steady state (including ring wrap-around) must not
  // allocate.
  TraceConfig config;
  config.enabled = true;
  config.capacity = 1u << 16;
  TraceRecorder recorder(config);
  Seconds t = 0.0;
  RequestId request = 0;
  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    t += 1e-3;
    recorder.record(t, TraceEventType::kAllocationChange, 0, request++, 0, 3.0,
                    4.5);
    benchmark::DoNotOptimize(recorder.size());
  }
  state.SetItemsProcessed(state.iterations());
  report_allocs_per_op(state, allocs_before, 1);
}
BENCHMARK(BM_TraceRecorderRecord);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 0.271);
  Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(200)->Arg(2000);

void BM_FluidAdvanceBatch(benchmark::State& state) {
  // The tentpole kernel in isolation: one server's fluid advance across all
  // active streams. batched=0 is the exact-mode inner loop — one
  // Request::advance plus one metering interval per stream, in active
  // order; batched=1 is FluidLane::advance_batch — the same per-slot
  // formulas in one pass over the struct-of-arrays with a single batch
  // metering sum. Any per-stream numeric difference between the two would
  // fail FluidLane.BatchAdvanceIsBitIdenticalToPerStream, so this measures
  // layout and loop structure, nothing else.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  Rng rng(5);
  Video video;
  video.id = 0;
  video.duration = 2.0 * 3600.0;
  video.view_bandwidth = 3.0;
  ClientProfile client{0.2 * video.size(), 30.0};
  Server server(0, 3.0 * static_cast<double>(n) + 60.0, 1e12);
  std::vector<std::unique_ptr<Request>> owner;
  for (std::size_t i = 0; i < n; ++i) {
    owner.push_back(std::make_unique<Request>(static_cast<RequestId>(i), video,
                                              0.0, client));
    Request& request = *owner.back();
    request.begin_streaming(0.0, 0);
    server.attach(request);
    request.set_allocation(0.0, 3.0);
    request.advance(rng.uniform(1.0, 600.0));
  }
  std::vector<Megabits> scratch;
  Seconds now = 600.0;

  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    now += 1e-4;  // small fluid step keeps the population in steady state
    if (batched) {
      const FluidLane::BatchResult batch =
          server.lane().advance_batch(now, 0.0, 1e18, scratch);
      benchmark::DoNotOptimize(batch.transmitted_in_window);
    } else {
      Megabits transmitted = 0.0;
      for (Request* request : server.active_requests()) {
        const Seconds start = request->last_update();
        const Mbps rate = request->allocation();
        request->advance(now);
        if (rate > 0.0 && now > start) transmitted += rate * (now - start);
      }
      benchmark::DoNotOptimize(transmitted);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  report_allocs_per_op(state, allocs_before, 1);
}
BENCHMARK(BM_FluidAdvanceBatch)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({300, 0})
    ->Args({300, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->ArgNames({"streams", "batched"});

namespace {

/// Attaches \p n steady-state streams to \p server, for the fill_* kernel
/// benches below (identical population to BM_FluidAdvanceBatch). The
/// requests bind to the server's lane, so the server must outlive them in
/// place — hence populate-in-place rather than return-by-value.
void populate_server(Server& server, std::size_t n,
                     std::vector<std::unique_ptr<Request>>& owner) {
  Rng rng(5);
  Video video;
  video.id = 0;
  video.duration = 2.0 * 3600.0;
  video.view_bandwidth = 3.0;
  ClientProfile client{0.2 * video.size(), 30.0};
  for (std::size_t i = 0; i < n; ++i) {
    owner.push_back(std::make_unique<Request>(static_cast<RequestId>(i), video,
                                              0.0, client));
    Request& request = *owner.back();
    request.begin_streaming(0.0, 0);
    server.attach(request);
    request.set_allocation(0.0, 3.0);
    request.advance(rng.uniform(1.0, 600.0));
  }
}

}  // namespace

void BM_FluidKeyBatch(benchmark::State& state) {
  // The EFTF/LFTF sort-key pass (PR 9): batched=0 is the scalar
  // per-candidate projected_finish loop sort_by_projected_finish runs when
  // the batch threshold is not met; batched=1 is
  // FluidLane::fill_projected_finish — one division-heavy vector pass over
  // the lane. Same doubles out either way (pinned by
  // FluidLane.FillProjectedFinishMatchesScalar).
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  std::vector<std::unique_ptr<Request>> owner;
  Server server(0, 3.0 * static_cast<double>(n) + 60.0, 1e12);
  populate_server(server, n, owner);
  std::vector<Seconds> keys(n);
  const Seconds now = 600.0;
  for (auto _ : state) {
    if (batched) {
      server.lane().fill_projected_finish(now, keys);
    } else {
      const auto& active = server.active_requests();
      for (std::size_t i = 0; i < active.size(); ++i) {
        keys[i] = active[i]->projected_finish(now);
      }
    }
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FluidKeyBatch)
    ->Args({300, 0})
    ->Args({300, 1})
    ->Args({3000, 0})
    ->Args({3000, 1})
    ->ArgNames({"streams", "batched"});

void BM_FluidRetimeBatch(benchmark::State& state) {
  // The predicted-event retiming arithmetic (PR 9): batched=1 is
  // FluidLane::fill_predicted_times — all three event times for every slot
  // in one pass; batched=0 replays the scalar per-stream arithmetic of
  // reschedule_predicted_events (three divisions and the gates, per
  // request). Neither side schedules events; this isolates the arithmetic
  // the batched recompute_server amortizes.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();
  std::vector<std::unique_ptr<Request>> owner;
  Server server(0, 3.0 * static_cast<double>(n) + 60.0, 1e12);
  populate_server(server, n, owner);
  std::vector<Seconds> tx(n), full(n), low(n);
  const Seconds now = 600.0;
  const double safety_cover = 4.0;
  for (auto _ : state) {
    if (batched) {
      server.lane().fill_predicted_times(now, safety_cover, tx, full, low);
    } else {
      const auto& active = server.active_requests();
      for (std::size_t i = 0; i < active.size(); ++i) {
        const Request& request = *active[i];
        const Mbps rate = request.allocation();
        tx[i] = rate > 0.0 ? now + request.remaining() / rate : kNever;
        const Mbps surplus = rate - request.drain_rate(now);
        full[i] = kNever;
        low[i] = kNever;
        if (surplus > 1e-12 && !request.buffer_full()) {
          const Seconds at = now + request.buffer_headroom() / surplus;
          if (at < tx[i]) full[i] = at;
        } else if (surplus < -1e-12) {
          const Megabits threshold = safety_cover * request.view_bandwidth();
          if (request.buffer_level() >
              threshold + StagingBuffer::kLevelTolerance) {
            const Seconds at =
                now + (request.buffer_level() - threshold) / (0.0 - surplus);
            if (at < tx[i]) low[i] = at;
          }
        }
      }
    }
    benchmark::DoNotOptimize(tx.data());
    benchmark::DoNotOptimize(full.data());
    benchmark::DoNotOptimize(low.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FluidRetimeBatch)
    ->Args({300, 0})
    ->Args({300, 1})
    ->Args({3000, 0})
    ->Args({3000, 1})
    ->ArgNames({"streams", "batched"});

void BM_EndToEndSmallSystemHour(benchmark::State& state) {
  // Whole-engine throughput: one simulated hour of the paper's small
  // system per iteration, with migration and staging enabled.
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    config.zipf_theta = 0.271;
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.admission.migration.enabled = true;
    config.duration = hours(1);
    config.warmup = 0.0;
    config.seed = seed++;
    VodSimulation simulation(config);
    simulation.run();
    events += simulation.simulator().executed_count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndSmallSystemHour)->Unit(benchmark::kMillisecond);

void BM_EndToEndFastMath(benchmark::State& state) {
  // Whole-engine throughput at 300-stream scale (5 servers x 180 Mb/s at a
  // 3 Mb/s view rate = 300 concurrent streams at full load), exact
  // (fast=0) vs fast_math (fast=1). Only SimulationConfig::fast_math
  // differs; run both args in one binary invocation so the speedup ratio
  // comes from interleaved measurements on the same machine state.
  const bool fast = state.range(0) != 0;
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    config.system.server_bandwidth = 180.0;
    config.zipf_theta = 0.271;
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.admission.migration.enabled = true;
    config.duration = hours(1);
    config.warmup = 0.0;
    config.seed = seed++;
    config.fast_math = fast;
    VodSimulation simulation(config);
    simulation.run();
    events += simulation.simulator().executed_count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndFastMath)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"fast"})
    ->Unit(benchmark::kMillisecond);

void BM_ShardedEndToEnd(benchmark::State& state) {
  // Sharded engine (DESIGN.md §12) vs the single-queue baseline on a
  // 16-server cluster at ~960 concurrent streams. Args: {shards, threads}.
  // shards=1 is the literal pre-sharding code path (the baseline row);
  // shards>1 adds the coordinator/window machinery, so the {4,1} row
  // isolates the protocol's serial overhead and the multi-thread rows show
  // whatever parallelism the host actually has. The serial_frac counter is
  // the measured coordinator share of executed events — the Amdahl ceiling
  // for this workload, independent of host core count.
  const int shards = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::uint64_t events = 0;
  std::uint64_t coordinator = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    config.system.num_servers = 16;
    config.system.server_bandwidth = 180.0;
    config.zipf_theta = 0.271;
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.admission.migration.enabled = true;
    config.duration = hours(0.25);
    config.warmup = 0.0;
    config.seed = seed++;
    config.shards = shards;
    config.shard_threads = threads;
    VodSimulation simulation(config);
    simulation.run();
    coordinator += simulation.coordinator_events();
    events += simulation.coordinator_events() + simulation.shard_events();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["serial_frac"] =
      events > 0 ? static_cast<double>(coordinator) / static_cast<double>(events)
                 : 0.0;
  state.SetLabel("items = simulator events (all queues)");
}
BENCHMARK(BM_ShardedEndToEnd)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({16, 4})
    ->ArgNames({"shards", "threads"})
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndObservedHour(benchmark::State& state) {
  // Observability overhead on the whole-engine hot loop. The same run as
  // BM_EndToEndSmallSystemHour with the trace recorder (all categories)
  // and/or the probe samplers attached. BM_EndToEndSmallSystemHour itself
  // is the disabled path (null recorder pointer at every emission site) —
  // the acceptance contract is that it stays within noise of the
  // pre-observability baseline, while the fully-on configurations here show
  // the cost of actually recording.
  const bool trace = state.range(0) != 0;
  const bool probe = state.range(1) != 0;
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimulationConfig config;
    config.system = SystemConfig::small_system();
    config.zipf_theta = 0.271;
    config.client.staging_fraction = 0.2;
    config.client.receive_bandwidth = 30.0;
    config.admission.migration.enabled = true;
    config.duration = hours(1);
    config.warmup = 0.0;
    config.seed = seed++;
    config.trace.enabled = trace;
    config.probe.enabled = probe;
    VodSimulation simulation(config);
    simulation.run();
    events += simulation.simulator().executed_count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndObservedHour)
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->ArgNames({"trace", "probe"})
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndFig7PolicyMatrix(benchmark::State& state) {
  // The PR-acceptance macro-benchmark: simulated events per second on the
  // fig7 policy-matrix configuration. One iteration runs every Figure 6
  // policy row (P1..P8: {even, predictive} x {migration on/off} x {0%, 20%
  // staging}) on the small system for half a simulated hour with the
  // paper's 30 Mb/s receive cap.
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (const PolicySpec& policy : figure6_policies()) {
      SimulationConfig config;
      config.system = SystemConfig::small_system();
      config.zipf_theta = 0.271;
      config.client.receive_bandwidth = 30.0;
      config.duration = hours(0.5);
      config.warmup = 0.0;
      config.seed = seed++;
      config = apply_policy(std::move(config), policy);
      VodSimulation simulation(config);
      simulation.run();
      events += simulation.simulator().executed_count();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndFig7PolicyMatrix)->Unit(benchmark::kMillisecond);

void BM_EndToEndFig7SweepPaired(benchmark::State& state) {
  // The production shape of the fig7 experiment: all policy rows share one
  // master seed per iteration (paired trials — how `fig7_policies` and
  // every other experiment binary actually runs the matrix, so rows see
  // identical arrival streams), and the sweep_context:1 variant routes
  // world construction through a SweepContext prepared once per sweep,
  // exactly as ExperimentRunner::run_sweep does. The 0-vs-1 ratio isolates
  // what shared catalogs/popularity/placement-blueprints are worth on a
  // matrix whose per-cell runtime is only half a simulated hour;
  // BM_EndToEndFig7PolicyMatrix above keeps the independent-seed workload
  // for continuity with pre-PR4 recordings.
  const bool use_context = state.range(0) != 0;
  std::uint64_t events = 0;
  std::uint64_t master_seed = 1;
  for (auto _ : state) {
    std::vector<SimulationConfig> configs;
    for (const PolicySpec& policy : figure6_policies()) {
      SimulationConfig config;
      config.system = SystemConfig::small_system();
      config.zipf_theta = 0.271;
      config.client.receive_bandwidth = 30.0;
      config.duration = hours(0.5);
      config.warmup = 0.0;
      configs.push_back(apply_policy(std::move(config), policy));
    }
    SweepContext context;
    if (use_context) context.prepare(configs, 1, master_seed);
    for (SimulationConfig config : configs) {
      config.seed = ExperimentRunner::derive_seed(master_seed, 0);
      VodSimulation simulation(std::move(config),
                               use_context ? &context : nullptr);
      simulation.run();
      events += simulation.simulator().executed_count();
    }
    ++master_seed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndFig7SweepPaired)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"sweep_context"})
    ->Unit(benchmark::kMillisecond);

void BM_TournamentSmall(benchmark::State& state) {
  // A shrunk cell grid of the vodsim_tournament tool: 2 schedulers x
  // 2 placements x {off, 1-hop} migration over a 60-title catalog, half a
  // simulated hour per cell, world construction shared through a
  // SweepContext (which also memoizes one BoundsReport per column). Guards
  // the end-to-end cost of the tournament path — including the bounds
  // computation and the gap bookkeeping — at CI smoke scale.
  const std::vector<TournamentSpec> grid = tournament_grid(
      {SchedulerKind::kEftf, SchedulerKind::kLftf},
      {PlacementKind::kEven, PlacementKind::kBsr}, {0, 1}, 0.2);
  std::uint64_t events = 0;
  std::uint64_t master_seed = 1;
  for (auto _ : state) {
    std::vector<SimulationConfig> configs;
    for (const TournamentSpec& spec : grid) {
      SimulationConfig config;
      config.system = SystemConfig::small_system();
      config.system.num_videos = 60;
      config.zipf_theta = 0.271;
      config.duration = hours(0.5);
      config.warmup = 0.0;
      config.fast_math = true;
      configs.push_back(apply_tournament_spec(std::move(config), spec));
    }
    SweepContext context;
    context.prepare(configs, 1, master_seed);
    for (SimulationConfig config : configs) {
      config.seed = ExperimentRunner::derive_seed(master_seed, 0);
      VodSimulation simulation(std::move(config), &context);
      simulation.run();
      benchmark::DoNotOptimize(simulation.metrics().utilization_gap());
      events += simulation.simulator().executed_count();
    }
    ++master_seed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_TournamentSmall)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
