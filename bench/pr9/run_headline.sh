#!/bin/sh
# PR9 headline: the PR8 1M-concurrent-stream configuration (100 servers x
# 15000 Mb/s, 1.5 Mb/s views, intermittent + buffer-aware, fast-math,
# shards=100), measured as an interleaved A/B comparison between the PR8
# binary snapshot ($OLD_CLI) and this tree's binary ($NEW_CLI).
#
# Protocol (single-core host; per-event cost grows with the live stream
# count, so wall time rises ~cubically in simulated time — a full-duration
# leg costs 1-2 h and best-of-3 at full duration would take ~10 h):
#   1. Interleaved best-of-3 at a 600 s slice of the headline config
#      (~500k streams admitted, predicted-event churn fully engaged):
#      A B A B A B, best (minimum) wall per side.
#   2. One full-duration pair (1200 s, ~1M streams admitted) run
#      back-to-back, old binary first: the true headline point.
# Every line streams through tee into $LOG so a killed run keeps all
# completed output.
set -e
cd /root/repo/build

OLD_CLI="${OLD_CLI:-/tmp/vodsim_cli_pr8}"
NEW_CLI="${NEW_CLI:-./examples/vodsim_cli}"
LOG="${HEADLINE_LOG:-/root/repo/bench/pr9/headline.log}"

: > "$LOG"
note() { echo "$@" | tee -a "$LOG"; }
note "old=$OLD_CLI new=$NEW_CLI"

run() {
  label="$1"; cli="$2"; hours="$3"; shards="$4"
  note "=== $label (hours=$hours shards=$shards) ==="
  start=$(date +%s)
  "$cli" \
    --system custom --servers 100 --bandwidth 15000 \
    --view-bw 1.5 --receive-bw 4.5 --staging 0.25 \
    --scheduler intermittent --buffer-aware true --fast-math true \
    --load 1.0 --hours "$hours" --warmup-hours 0 --seed 42 \
    --shards "$shards" --shard-threads 1 2>&1 | tail -40 | tee -a "$LOG"
  end=$(date +%s)
  note "WALL_SECONDS $label $((end - start))"
  note "=== end $label ==="
}

# Interleaved best-of-3 at the 600 s slice.
for rep in 1 2 3; do
  run "slice-old-$rep" "$OLD_CLI" 0.1667 100
  run "slice-new-$rep" "$NEW_CLI" 0.1667 100
done

# Full-duration headline pair (1200 s, ~1M concurrent streams at the end).
run "full-old" "$OLD_CLI" 0.3333 100
run "full-new" "$NEW_CLI" 0.3333 100

note ALL_RUNS_DONE
