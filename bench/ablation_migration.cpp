/// \file ablation_migration.cpp
/// \brief E11 / DRM design-knob ablation.
///
/// The paper fixes chain length 1 and compares hops 1 vs unlimited; here we
/// also sweep longer chains and victim-selection strategies to show the
/// paper's cheapest settings already capture nearly all of the benefit.

#include "bench_common.h"

int main() {
  using namespace vodsim;
  bench::print_scale_banner("E11 / migration ablation",
                            "chain length, hop limits and victim selection");

  const BenchScale scale = bench_scale();
  const double theta = 0.0;  // classic Zipf: migration has work to do

  for (const SystemConfig& system :
       {SystemConfig::large_system(), SystemConfig::small_system()}) {
    struct Variant {
      std::string label;
      int chain;
      int hops;
      VictimStrategy victim;
    };
    const std::vector<Variant> variants = {
        {"no migration", 0, 0, VictimStrategy::kFirstFit},
        {"chain 1, hops 1", 1, 1, VictimStrategy::kFirstFit},
        {"chain 1, hops 2", 1, 2, VictimStrategy::kFirstFit},
        {"chain 1, unlimited", 1, -1, VictimStrategy::kFirstFit},
        {"chain 2, hops 1", 2, 1, VictimStrategy::kFirstFit},
        {"chain 3, hops 1", 3, 1, VictimStrategy::kFirstFit},
        {"victim least-remaining", 1, 1, VictimStrategy::kLeastRemaining},
        {"victim most-remaining", 1, 1, VictimStrategy::kMostRemaining},
        {"victim most-buffered", 1, 1, VictimStrategy::kMostBuffered},
    };

    std::vector<SimulationConfig> configs;
    for (const Variant& variant : variants) {
      SimulationConfig config = bench::base_config(system);
      config.zipf_theta = theta;
      config.client.staging_fraction = 0.2;
      config.client.receive_bandwidth = 30.0;
      config.admission.migration.enabled = variant.chain > 0;
      config.admission.migration.max_chain_length = std::max(variant.chain, 1);
      config.admission.migration.max_hops_per_request = variant.hops;
      config.admission.migration.victim = variant.victim;
      configs.push_back(config);
    }
    ExperimentRunner runner;
    const auto points = runner.run_sweep(configs, scale.trials);

    TablePrinter table({"variant", "utilization", "migr/arrival"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
      table.add_row({variants[i].label, format_mean_ci(points[i].utilization),
                     TablePrinter::num(points[i].migrations_per_arrival.mean(), 4)});
    }
    std::cout << "-- " << system.name << " system (theta = " << theta << ") --\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
